//! Epoll reactor transport for the client edge (Linux only).
//!
//! The blocking edge in [`crate::tcp`] spends a thread (and two fds) per
//! connection; at tens of thousands of mostly-idle connections the stacks
//! and context switches dominate. This module is the readiness-based
//! alternative the paper's event-driven framework implies: **N reactor
//! threads**, each owning
//!
//! * one epoll instance (via the vendored `mio` shim),
//! * one acceptor — its own `SO_REUSEPORT` listener when the platform
//!   grants it (the kernel then load-balances accepts across reactors),
//!   else a shared listener drained under a tiny accept lock,
//! * a slab of connection states, indexed by the epoll token.
//!
//! Reads are edge-triggered: a readable event marks the connection and the
//! drive loop reads until `WouldBlock`, feeding the same incremental
//! [`ProtocolParser`] the blocking edge uses. Each response is encoded
//! once into a frame that is queued as-is; a vectored write
//! (`writev`-style) flushes a batch of frames per turn without recopying
//! them into a contiguous output buffer.
//!
//! # Backpressure, re-expressed
//!
//! The blocking edge's overload caps map onto reactor mechanics instead of
//! shed-and-reply wherever flow control can do the job:
//!
//! * `pipeline_cap` → a **fairness budget**: at most that many requests
//!   are decoded and served per connection per turn. Surplus input stays
//!   in the parser/socket buffer and TCP pushes back on the sender —
//!   nothing mid-stream is shed, it is merely deferred.
//! * response backlog → an **output high-water mark**: a connection whose
//!   pending output exceeds [`OUT_HIGH_WATER`] stops being served (and
//!   therefore stops being read) until a writable edge drains it below
//!   [`OUT_LOW_WATER`].
//! * `max_connections` → a **slab bound**: a connection over the cap is
//!   still accepted, answers its first request batch with an explicit
//!   [`KvError::Overloaded`], and is closed — the client learns it was
//!   shed instead of staring at an unanswered SYN backlog. (A bounded
//!   number of such "shed lane" connections exist at once; beyond that the
//!   socket is simply dropped, as the blocking edge always does.)

use crate::tcp::{
    AnyHandler, Completer, EdgeCounters, EdgeTransport, ParserFactory, Served, ServerOptions,
};
use bespokv_proto::client::Response;
use bespokv_proto::parser::ProtocolParser;
use bespokv_types::KvError;
use bytes::{Bytes, BytesMut};
use mio::net::{TcpListener as MioListener, TcpStream as MioStream};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Token of every reactor's acceptor.
const ACCEPT: Token = Token(usize::MAX - 1);
/// Token of every reactor's shutdown waker.
const WAKE: Token = Token(usize::MAX);

/// Socket read granularity (same as the blocking edge's stack buffer).
const READ_CHUNK: usize = 16 * 1024;
/// Pending output beyond this pauses serving (and thus reading) the
/// connection until the socket drains.
const OUT_HIGH_WATER: usize = 256 * 1024;
/// Serving resumes once pending output falls to this.
const OUT_LOW_WATER: usize = 32 * 1024;
/// Per-reactor bound on over-cap connections parked to receive their
/// explicit `Overloaded` answer.
const SHED_LANE: usize = 256;
/// Fairness budget when no `pipeline_cap` is configured: requests served
/// per connection per reactor turn.
const DEFAULT_TURN_BUDGET: usize = 128;
/// Frames per vectored write — Linux caps an iovec array at 1024
/// (`UIO_MAXIOV`); 64 already amortises the syscall and keeps the
/// on-stack slice array small.
const MAX_IOV: usize = 64;

fn default_reactor_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// State shared by all reactor threads of one server.
struct ReactorShared {
    stop: AtomicBool,
    counters: Arc<EdgeCounters>,
    /// Live (non-shed) connections across all reactors.
    conn_count: AtomicUsize,
    max_connections: Option<usize>,
    /// Requests served per connection per turn (see module docs).
    budget: usize,
}

impl ReactorShared {
    /// Reserves a connection slot under `max_connections`, atomically
    /// across reactors. `false` means the cap is reached.
    fn try_reserve_conn(&self) -> bool {
        let Some(cap) = self.max_connections else {
            self.conn_count.fetch_add(1, Ordering::Relaxed);
            return true;
        };
        let mut cur = self.conn_count.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return false;
            }
            match self.conn_count.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

/// Per-reactor completion mailbox for parked requests. A [`Completer`]
/// minted on this reactor pushes its response here from any thread and
/// wakes the reactor, which matches it back to the parked output slot by
/// `(token, generation, ticket)` — the generation discards completions
/// aimed at a slab slot that was reused in the meantime.
struct Injector {
    queue: Mutex<Vec<(usize, u64, u64, Response)>>,
    waker: Waker,
}

impl Injector {
    fn complete(&self, token: usize, gen: u64, ticket: u64, resp: Response) {
        self.queue.lock().push((token, gen, ticket, resp));
        let _ = self.waker.wake();
    }
}

/// The epoll-reactor implementation of [`EdgeTransport`].
pub(crate) struct ReactorEdge {
    local_addr: SocketAddr,
    shared: Arc<ReactorShared>,
    injectors: Vec<Arc<Injector>>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorEdge {
    pub(crate) fn bind(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: AnyHandler,
        options: &ServerOptions,
        counters: Arc<EdgeCounters>,
    ) -> io::Result<ReactorEdge> {
        let n = options.reactor_threads.unwrap_or_else(default_reactor_count).max(1);
        let (listeners, local_addr, accept_lock) = build_listeners(addr, n)?;
        let shared = Arc::new(ReactorShared {
            stop: AtomicBool::new(false),
            counters,
            conn_count: AtomicUsize::new(0),
            max_connections: options.max_connections,
            budget: options.pipeline_cap.unwrap_or(DEFAULT_TURN_BUDGET).max(1),
        });
        let mut injectors = Vec::with_capacity(n);
        let mut threads = Vec::with_capacity(n);
        let startup = || -> io::Result<()> {
            for (i, listener) in listeners.into_iter().enumerate() {
                let poll = Poll::new()?;
                let waker = Waker::new(poll.registry(), WAKE)?;
                let injector = Arc::new(Injector {
                    queue: Mutex::new(Vec::new()),
                    waker,
                });
                let mut mio_listener = MioListener::from_std(listener);
                poll.registry()
                    .register(&mut mio_listener, ACCEPT, Interest::READABLE)?;
                let mut reactor = Reactor {
                    poll,
                    listener: mio_listener,
                    accept_lock: accept_lock.clone(),
                    shared: Arc::clone(&shared),
                    make_parser: Arc::clone(&make_parser),
                    handler: handler.clone(),
                    injector: Arc::clone(&injector),
                    slab: Vec::new(),
                    free: Vec::new(),
                    ready: Vec::new(),
                    shed_count: 0,
                    next_gen: 0,
                    read_buf: vec![0u8; READ_CHUNK].into_boxed_slice(),
                };
                let t = std::thread::Builder::new()
                    .name(format!("bespokv-reactor-{i}"))
                    .spawn(move || reactor.run())?;
                injectors.push(injector);
                threads.push(t);
            }
            Ok(())
        };
        if let Err(e) = startup() {
            // Partial start: unwind the reactors already running.
            shared.stop.store(true, Ordering::Release);
            for inj in &injectors {
                let _ = inj.waker.wake();
            }
            for t in threads {
                let _ = t.join();
            }
            return Err(e);
        }
        Ok(ReactorEdge {
            local_addr,
            shared,
            injectors,
            threads,
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl EdgeTransport for ReactorEdge {
    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for inj in &self.injectors {
            let _ = inj.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorEdge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the per-reactor listeners: `SO_REUSEPORT` siblings when
/// possible (kernel-balanced accepts, no shared state), else clones of
/// one listener drained under a shared accept lock.
#[allow(clippy::type_complexity)]
fn build_listeners(
    addr: &str,
    n: usize,
) -> io::Result<(Vec<std::net::TcpListener>, SocketAddr, Option<Arc<Mutex<()>>>)> {
    use std::net::ToSocketAddrs;
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable bind address"))?;
    if n > 1 {
        if let SocketAddr::V4(v4) = target {
            if let Ok(first) = sys::bind_reuseport(v4) {
                if let Ok(SocketAddr::V4(real)) = first.local_addr() {
                    let mut listeners = vec![first];
                    // Siblings bind the *resolved* port (matters for :0).
                    while listeners.len() < n {
                        match sys::bind_reuseport(real) {
                            Ok(l) => listeners.push(l),
                            Err(_) => break,
                        }
                    }
                    if listeners.len() == n {
                        return Ok((listeners, SocketAddr::V4(real), None));
                    }
                }
            }
        }
    }
    let listener = std::net::TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let mut listeners = Vec::with_capacity(n);
    for _ in 1..n {
        listeners.push(listener.try_clone()?);
    }
    listeners.push(listener);
    Ok((listeners, local, Some(Arc::new(Mutex::new(())))))
}

/// One ordered response slot in a connection's output queue. Parked
/// requests hold their place in the per-connection FIFO as `Pending`
/// slots; the completion (or the deadline backstop) turns the slot into a
/// `Frame` in place, so responses can never overtake each other even when
/// one of them waits on a wedged controlet.
enum OutSlot {
    /// An encoded, ready-to-write response frame.
    Frame(Bytes),
    /// A parked request's reserved position, keyed by its ticket.
    Pending(u64),
}

/// Per-connection state, slab-indexed by its epoll token.
struct Conn {
    stream: MioStream,
    parser: Box<dyn ProtocolParser>,
    /// Ordered response slots, oldest first. Ready frames are encoded
    /// exactly once and frozen in place; a vectored write flushes up to
    /// [`MAX_IOV`] of the *contiguous ready prefix* per syscall (a
    /// `Pending` slot fences the flush until its completion arrives).
    out: VecDeque<OutSlot>,
    /// Bytes of the front frame already written (partial `writev`).
    out_head: usize,
    /// Unsent bytes across all ready frames (already net of `out_head`) —
    /// the quantity the high/low-water marks compare against.
    out_len: usize,
    /// Slab-slot generation this connection was installed under; a
    /// completion carrying a stale generation is discarded.
    gen: u64,
    /// Next parked-request ticket (unique per connection incarnation).
    next_ticket: u64,
    /// Outstanding `Pending` slots; at `budget` the connection stops being
    /// served (and read) until a completion lands — backpressure, exactly
    /// like the output high-water mark.
    parked: usize,
    /// The last read edge has not been drained to `WouldBlock` yet.
    sock_readable: bool,
    /// Registered for WRITABLE (a flush hit `WouldBlock`).
    writable_interest: bool,
    /// Output over the high-water mark: serving is suspended.
    paused: bool,
    /// Over-cap connection in the shed lane: answers `Overloaded`, then closes.
    shed: bool,
    /// The shed answer has been produced.
    answered_shed: bool,
    /// Peer hung up; close once output drains.
    eof: bool,
    /// Close once output drains.
    closing: bool,
    /// Already on the ready list for this turn.
    queued: bool,
}

enum Drive {
    Keep,
    Close,
}

/// Encodes a ready response once and queues it as the connection's next
/// ordered output slot.
fn push_frame(c: &mut Conn, resp: &Response) {
    let mut buf = BytesMut::new();
    c.parser.encode_response(resp, &mut buf);
    let frame = buf.freeze();
    c.out_len += frame.len();
    c.out.push_back(OutSlot::Frame(frame));
}

/// One reactor thread: poll, accept, drive.
struct Reactor {
    poll: Poll,
    listener: MioListener,
    accept_lock: Option<Arc<Mutex<()>>>,
    shared: Arc<ReactorShared>,
    make_parser: Arc<ParserFactory>,
    handler: AnyHandler,
    injector: Arc<Injector>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Connections with work pending this turn (deferred budget, fresh
    /// readable/writable edges).
    ready: Vec<usize>,
    /// Shed-lane connections currently parked on this reactor.
    shed_count: usize,
    /// Generation source for slab installs (see [`Conn::gen`]).
    next_gen: u64,
    read_buf: Box<[u8]>,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            // Deferred work pending → just collect whatever is already
            // ready; otherwise sleep until an edge or the shutdown waker.
            let timeout = if self.ready.is_empty() {
                None
            } else {
                Some(Duration::ZERO)
            };
            if self.poll.poll(&mut events, timeout).is_err() {
                if self.shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let mut accept_ready = false;
            for ev in &events {
                match ev.token() {
                    WAKE => {}
                    ACCEPT => accept_ready = true,
                    Token(i) => {
                        if let Some(c) = self.slab.get_mut(i).and_then(|s| s.as_mut()) {
                            if ev.is_readable() {
                                c.sock_readable = true;
                            }
                            // Writable edges are consumed by the flush every
                            // drive performs; only the scheduling matters.
                            if !c.queued {
                                c.queued = true;
                                self.ready.push(i);
                            }
                        }
                    }
                }
            }
            if accept_ready {
                self.accept_all();
            }
            self.drain_completions();
            for idx in std::mem::take(&mut self.ready) {
                self.drive(idx);
            }
        }
        // Dropping the slab closes every connection fd.
        for c in self.slab.drain(..).flatten() {
            if !c.shed {
                self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Matches injected completions of parked requests back to their
    /// reserved output slots. Runs on the reactor thread, so the
    /// connection's parser is used without synchronization; stale
    /// `(token, gen)` pairs (the connection died or the slot was reused)
    /// and unknown tickets (deadline already answered) are discarded.
    fn drain_completions(&mut self) {
        let completions = std::mem::take(&mut *self.injector.queue.lock());
        for (idx, gen, ticket, resp) in completions {
            let Some(c) = self.slab.get_mut(idx).and_then(|s| s.as_mut()) else {
                continue;
            };
            if c.gen != gen {
                continue;
            }
            let Some(pos) = c
                .out
                .iter()
                .position(|s| matches!(s, OutSlot::Pending(t) if *t == ticket))
            else {
                continue;
            };
            let mut buf = BytesMut::new();
            c.parser.encode_response(&resp, &mut buf);
            let frame = buf.freeze();
            c.out_len += frame.len();
            c.out[pos] = OutSlot::Frame(frame);
            c.parked -= 1;
            if !c.queued {
                c.queued = true;
                self.ready.push(idx);
            }
        }
    }

    /// Drains the acceptor (edge-triggered: must hit `WouldBlock`).
    fn accept_all(&mut self) {
        loop {
            let accepted = {
                let _guard = self.accept_lock.as_ref().map(|l| l.lock());
                self.listener.accept()
            };
            match accepted {
                Ok((stream, _peer)) => self.install(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn install(&mut self, mut stream: MioStream) {
        let _ = stream.set_nodelay(true);
        let shed = if self.shared.try_reserve_conn() {
            false
        } else {
            // Over the slab bound. Park it in the shed lane for an explicit
            // Overloaded answer — unless the lane itself is full, in which
            // case dropping is the only honest move left.
            self.shared.counters.refused.fetch_add(1, Ordering::Relaxed);
            if self.shed_count >= SHED_LANE {
                return; // drop: closes the socket
            }
            self.shed_count += 1;
            true
        };
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        if self
            .poll
            .registry()
            .register(&mut stream, Token(idx), Interest::READABLE)
            .is_err()
        {
            self.free.push(idx);
            if shed {
                self.shed_count -= 1;
            } else {
                self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
        if !shed {
            self.shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        }
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        self.slab[idx] = Some(Conn {
            stream,
            parser: (self.make_parser)(),
            out: VecDeque::new(),
            out_head: 0,
            out_len: 0,
            gen,
            next_ticket: 0,
            parked: 0,
            // Bytes may have landed before registration; the first drive
            // reads to WouldBlock either way.
            sock_readable: true,
            writable_interest: false,
            paused: false,
            shed,
            answered_shed: false,
            eof: false,
            closing: false,
            queued: true,
        });
        self.ready.push(idx);
    }

    fn drive(&mut self, idx: usize) {
        // The connection leaves the slab for the duration of the drive so
        // the borrow checker sees it disjoint from the reactor state.
        let Some(mut conn) = self.slab.get_mut(idx).and_then(Option::take) else {
            return;
        };
        match self.drive_conn(idx, &mut conn) {
            Drive::Keep => self.slab[idx] = Some(conn),
            Drive::Close => self.release(idx, conn),
        }
    }

    fn release(&mut self, idx: usize, conn: Conn) {
        if conn.shed {
            self.shed_count -= 1;
        } else {
            self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
        }
        drop(conn); // closes the fd, which also removes it from epoll
        self.free.push(idx);
    }

    fn drive_conn(&mut self, idx: usize, c: &mut Conn) -> Drive {
        c.queued = false;
        let mut requeue = false;
        'work: loop {
            // Serve what the parser already holds, within the fairness
            // budget and below the output high-water mark.
            let mut served = 0usize;
            let mut parked_full = false;
            while !c.paused && served < self.shared.budget {
                if c.parked >= self.shared.budget {
                    // Parked-slot backpressure: too many requests already
                    // wait on asynchronous completions; stop serving (and
                    // reading) this connection until one lands — TCP pushes
                    // back on the sender, nothing is shed.
                    parked_full = true;
                    break;
                }
                match c.parser.next_request() {
                    Ok(Some(req)) => {
                        served += 1;
                        if c.shed {
                            c.answered_shed = true;
                            let resp = Response::err(req.id, KvError::Overloaded);
                            push_frame(c, &resp);
                            continue;
                        }
                        let rid = req.id;
                        let gen = c.gen;
                        let ticket = c.next_ticket;
                        let mut minted = false;
                        let injector = &self.injector;
                        let handler = &self.handler;
                        // A panicking handler costs this connection, not
                        // the reactor thread (and its whole slab).
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handler.call(req, &mut || {
                                    minted = true;
                                    let inj = Arc::clone(injector);
                                    Completer::new(rid, move |resp| {
                                        inj.complete(idx, gen, ticket, resp);
                                    })
                                })
                            }));
                        match outcome {
                            Ok(Served::Ready(resp)) => push_frame(c, &resp),
                            Ok(Served::Parked) if minted => {
                                // The reactor turn returns immediately; the
                                // slot holds the response's place in the
                                // per-connection FIFO until the completer
                                // (or its drop backstop) fires.
                                c.next_ticket += 1;
                                c.parked += 1;
                                c.out.push_back(OutSlot::Pending(ticket));
                            }
                            Ok(Served::Parked) => {
                                // Parked without taking a completer: nothing
                                // will ever answer; synthesize the failure.
                                push_frame(c, &Response::err(rid, KvError::Timeout));
                            }
                            Err(_) => return Drive::Close,
                        }
                        if c.out_len >= OUT_HIGH_WATER {
                            c.paused = true;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        self.shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        return Drive::Close;
                    }
                }
            }
            if served == self.shared.budget {
                // Budget spent: yield to the other connections; the rest of
                // this one's input is deferred, not shed.
                requeue = true;
                break 'work;
            }
            if parked_full {
                // No requeue: nothing can progress until a completion
                // arrives, and `drain_completions` requeues then.
                break 'work;
            }
            if c.paused {
                // Output backpressure: try to drain; park until a writable
                // edge if the socket won't take it yet.
                if !self.flush(idx, c) {
                    return Drive::Close;
                }
                if c.paused {
                    break 'work;
                }
                continue 'work;
            }
            // Parser drained; pull more bytes while the read edge is live.
            if !c.sock_readable {
                break 'work;
            }
            match c.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    c.eof = true;
                    c.sock_readable = false;
                }
                Ok(n) => {
                    c.parser.feed(&self.read_buf[..n]);
                    continue 'work;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => c.sock_readable = false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Drive::Close,
            }
        }
        // A shed-lane connection closes right after its explicit answer; a
        // hung-up peer once the responses it is owed have drained.
        if (c.shed && c.answered_shed) || c.eof {
            c.closing = true;
        }
        if !self.flush(idx, c) {
            return Drive::Close;
        }
        // A closing connection with parked slots waits for their
        // completions (the deadline backstop bounds the wait); the stale-
        // generation check makes late completions after the close harmless.
        if c.closing && c.out.is_empty() {
            return Drive::Close;
        }
        if requeue && !c.queued {
            c.queued = true;
            self.ready.push(idx);
        }
        Drive::Keep
    }

    /// Writes pending output with vectored writes (up to [`MAX_IOV`]
    /// frames of the contiguous *ready* prefix per syscall — a `Pending`
    /// slot fences the flush — the first frame offset by `out_head` for a
    /// partial prior write); arms/disarms WRITABLE interest as needed.
    /// `false` means the connection is dead.
    fn flush(&self, idx: usize, c: &mut Conn) -> bool {
        loop {
            let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(c.out.len().min(MAX_IOV));
            for (i, slot) in c.out.iter().take(MAX_IOV).enumerate() {
                match slot {
                    OutSlot::Frame(frame) => {
                        let frame = if i == 0 { &frame[c.out_head..] } else { &frame[..] };
                        iov.push(IoSlice::new(frame));
                    }
                    // A parked response's reserved position: everything
                    // behind it must wait, or responses would reorder.
                    OutSlot::Pending(_) => break,
                }
            }
            if iov.is_empty() {
                break;
            }
            match c.stream.write_vectored(&iov) {
                Ok(0) => return false,
                Ok(mut n) => {
                    c.out_len -= n;
                    // Retire fully-written frames; remember the offset
                    // into a partially-written front frame.
                    while n > 0 {
                        let OutSlot::Frame(front) = &c.out[0] else {
                            unreachable!("wrote bytes of a pending slot");
                        };
                        let left = front.len() - c.out_head;
                        if n >= left {
                            n -= left;
                            c.out_head = 0;
                            c.out.pop_front();
                        } else {
                            c.out_head += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Socket buffer full: re-arm for a writable edge. The
                    // reregister also refreshes the read edge, which is
                    // harmless (a spurious event at worst).
                    if !c.writable_interest {
                        if self
                            .poll
                            .registry()
                            .reregister(
                                &mut c.stream,
                                Token(idx),
                                Interest::READABLE | Interest::WRITABLE,
                            )
                            .is_err()
                        {
                            return false;
                        }
                        c.writable_interest = true;
                    }
                    if c.paused && c.out_len <= OUT_LOW_WATER {
                        c.paused = false;
                    }
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if c.writable_interest {
            if self
                .poll
                .registry()
                .reregister(&mut c.stream, Token(idx), Interest::READABLE)
                .is_err()
            {
                return false;
            }
            c.writable_interest = false;
        }
        // Ready frames fenced behind a pending slot still count against
        // the high-water mark; only a genuinely drained backlog unpauses.
        if c.out_len <= OUT_LOW_WATER {
            c.paused = false;
        }
        true
    }
}

/// `SO_REUSEPORT` listener creation, declared directly against the C ABI
/// (same offline-build pattern as the vendored `mio` shim; IPv4 only,
/// which is all the edge binds in practice).
mod sys {
    use std::io;
    use std::mem;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;
    const LISTEN_BACKLOG: i32 = 1024;

    /// The kernel's `struct sockaddr_in`: port and address live in network
    /// byte order.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(super) fn bind_reuseport(addr: SocketAddrV4) -> io::Result<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            for opt in [SO_REUSEADDR, SO_REUSEPORT] {
                if setsockopt(fd, SOL_SOCKET, opt, &one, 4) != 0 {
                    return Err(fail(fd));
                }
            }
            let sa = SockaddrIn {
                family: AF_INET as u16,
                port: addr.port().to_be(),
                // octets() is already big-endian byte order; from_ne_bytes
                // preserves that memory layout.
                addr: u32::from_ne_bytes(addr.ip().octets()),
                zero: [0; 8],
            };
            if bind(fd, &sa, mem::size_of::<SockaddrIn>() as u32) != 0 {
                return Err(fail(fd));
            }
            if listen(fd, LISTEN_BACKLOG) != 0 {
                return Err(fail(fd));
            }
            // SAFETY: fd is a fresh, owned, listening socket.
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::tcp::{
        Handler, ServerOptions, TcpClient, TcpServer, TransportKind,
    };
    use bespokv_proto::client::{Op, Request, RespBody, Response};
    use bespokv_proto::parser::{BinaryParser, ProtocolParser};
    use bespokv_types::{ClientId, Key, KvError, RequestId, Value, VersionedValue};
    use bytes::BytesMut;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::io::{Read, Write};
    use std::sync::Arc;
    use std::time::Duration;

    fn kv_handler() -> Arc<Handler> {
        let store: Mutex<HashMap<Key, Value>> = Mutex::new(HashMap::new());
        Arc::new(move |req: Request| {
            let result = match &req.op {
                Op::Put { key, value } => {
                    store.lock().insert(key.clone(), value.clone());
                    Ok(RespBody::Done)
                }
                Op::Get { key } => store
                    .lock()
                    .get(key)
                    .cloned()
                    .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                    .ok_or(KvError::NotFound),
                _ => Err(KvError::Rejected("unsupported".into())),
            };
            Response {
                id: req.id,
                result,
            }
        })
    }

    fn reactor_server(options: ServerOptions) -> TcpServer {
        TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                transport: Some(TransportKind::Reactor),
                reactor_threads: Some(2),
                ..options
            },
        )
        .unwrap()
    }

    fn rid(seq: u32) -> RequestId {
        RequestId::compose(ClientId(1), seq)
    }

    #[test]
    fn reactor_roundtrip_and_stop() {
        let server = reactor_server(ServerOptions::default());
        assert_eq!(server.transport_kind(), TransportKind::Reactor);
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        assert_eq!(client.call(&put).unwrap().result, Ok(RespBody::Done));
        let get = Request::new(rid(1), Op::Get { key: Key::from("k") });
        assert_eq!(
            client.call(&get).unwrap().result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("v"), 1)))
        );
        // stop() with the connection still open must join promptly.
        let (tx, rx) = std::sync::mpsc::channel();
        let stopper = std::thread::spawn(move || {
            server.stop();
            let _ = tx.send(());
        });
        assert!(
            rx.recv_timeout(Duration::from_secs(10)).is_ok(),
            "reactor stop() hung with a live connection"
        );
        stopper.join().unwrap();
    }

    /// Satellite: a request frame trickling in byte-by-byte across many
    /// readable edges must reassemble into exactly one served request.
    #[test]
    fn partial_frame_trickle_reassembles() {
        let server = reactor_server(ServerOptions::default());
        // Seed a value to read back.
        let mut seeder =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("trickle"),
                value: Value::from("payload"),
            },
        );
        assert_eq!(seeder.call(&put).unwrap().result, Ok(RespBody::Done));

        // Hand-feed the GET frame one byte at a time.
        let mut parser = BinaryParser::new();
        let get = Request::new(rid(1), Op::Get { key: Key::from("trickle") });
        let mut wire = BytesMut::new();
        parser.encode_request(&get, &mut wire);
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for byte in wire.iter() {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reply = BinaryParser::new();
        let mut buf = [0u8; 1024];
        let resp = loop {
            if let Some(r) = reply.next_response().unwrap() {
                break r;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed mid-trickle");
            reply.feed(&buf[..n]);
        };
        assert_eq!(resp.id, get.id);
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("payload"), 1)))
        );
        server.stop();
    }

    /// Satellite: responses larger than the socket buffer must pend, arm
    /// WRITABLE interest, and complete once the (initially idle) client
    /// starts reading — the write path re-arms instead of busy-spinning or
    /// dropping output.
    #[test]
    fn write_interest_rearms_after_full_socket_buffer() {
        let server = reactor_server(ServerOptions::default());
        let addr = server.local_addr();
        let big = Value::from(vec![0xA5u8; 256 * 1024]);
        let mut seeder = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("big"),
                value: big.clone(),
            },
        );
        assert_eq!(seeder.call(&put).unwrap().result, Ok(RespBody::Done));

        // Pipeline 8 GETs of the 256 KiB value (~2 MiB of responses) and
        // do NOT read for a while: the server must park on WRITABLE.
        let mut parser = BinaryParser::new();
        let reqs: Vec<Request> = (1..=8)
            .map(|i| Request::new(rid(i), Op::Get { key: Key::from("big") }))
            .collect();
        let mut wire = BytesMut::new();
        for r in &reqs {
            parser.encode_request(r, &mut wire);
        }
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // Now drain: every response must arrive, intact and in order.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reply = BinaryParser::new();
        let mut buf = [0u8; 64 * 1024];
        let mut got = Vec::new();
        while got.len() < reqs.len() {
            while let Some(r) = reply.next_response().unwrap() {
                got.push(r);
            }
            if got.len() == reqs.len() {
                break;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed before all responses arrived");
            reply.feed(&buf[..n]);
        }
        for (req, resp) in reqs.iter().zip(&got) {
            assert_eq!(resp.id, req.id, "responses reordered under write backpressure");
            assert_eq!(
                resp.result,
                Ok(RespBody::Value(VersionedValue::new(big.clone(), 1)))
            );
        }
        server.stop();
    }

    /// Satellite (writev flush): a burst of pipelined mid-size responses
    /// must trip the output high-water pause by accumulation (no single
    /// frame reaches the mark alone), then drain through repeated
    /// vectored writes. Exercises pause/unpause cycling, multi-frame
    /// iovec batches, and partial-write head offsets — every response
    /// must arrive intact and in order.
    #[test]
    fn high_water_pause_resumes_and_preserves_frames() {
        let server = reactor_server(ServerOptions::default());
        let addr = server.local_addr();
        let val = Value::from(vec![0x5Au8; 48 * 1024]);
        let mut seeder = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("hw"),
                value: val.clone(),
            },
        );
        assert_eq!(seeder.call(&put).unwrap().result, Ok(RespBody::Done));

        // 32 pipelined GETs of a 48 KiB value: ~1.5 MiB of responses, far
        // over OUT_HIGH_WATER, while the client does not read — the
        // server must pause serving, park on WRITABLE, and resume below
        // the low-water mark as we drain.
        let mut parser = BinaryParser::new();
        let reqs: Vec<Request> = (1..=32)
            .map(|i| Request::new(rid(i), Op::Get { key: Key::from("hw") }))
            .collect();
        let mut wire = BytesMut::new();
        for r in &reqs {
            parser.encode_request(r, &mut wire);
        }
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reply = BinaryParser::new();
        let mut buf = [0u8; 64 * 1024];
        let mut got = Vec::new();
        while got.len() < reqs.len() {
            while let Some(r) = reply.next_response().unwrap() {
                got.push(r);
            }
            if got.len() == reqs.len() {
                break;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed before all responses arrived");
            reply.feed(&buf[..n]);
        }
        for (req, resp) in reqs.iter().zip(&got) {
            assert_eq!(resp.id, req.id, "frames reordered across the pause");
            assert_eq!(
                resp.result,
                Ok(RespBody::Value(VersionedValue::new(val.clone(), 1)))
            );
        }
        server.stop();
    }

    /// Satellite: deep pipelining across concurrent connections — each
    /// connection's responses come back complete and in request order.
    #[test]
    fn per_connection_order_across_reactors() {
        let server = reactor_server(ServerOptions::default());
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c =
                        TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                    for round in 0..5u32 {
                        let reqs: Vec<Request> = (0..64)
                            .map(|i| {
                                Request::new(
                                    RequestId::compose(ClientId(t), round * 64 + i),
                                    Op::Put {
                                        key: Key::from(format!("k{t}-{round}-{i}")),
                                        value: Value::from("v"),
                                    },
                                )
                            })
                            .collect();
                        let resps = c.call_pipelined(&reqs).unwrap();
                        assert_eq!(resps.len(), reqs.len(), "lost responses");
                        for (req, resp) in reqs.iter().zip(&resps) {
                            assert_eq!(resp.id, req.id, "responses reordered");
                            assert_eq!(resp.result, Ok(RespBody::Done));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }

    /// The reactor re-expression of `pipeline_cap`: a batch deeper than the
    /// cap is *deferred* across turns, not shed — every request is served.
    #[test]
    fn pipeline_cap_defers_instead_of_shedding() {
        let server = reactor_server(ServerOptions {
            pipeline_cap: Some(4),
            ..ServerOptions::default()
        });
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..64)
            .map(|i| {
                Request::new(rid(i), Op::Put {
                    key: Key::from(format!("k{i}")),
                    value: Value::from("v"),
                })
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.id, req.id);
            assert_eq!(resp.result, Ok(RespBody::Done), "reactor shed a deferrable request");
        }
        assert_eq!(server.stats().pipeline_shed, 0);
        server.stop();
    }

    /// The reactor re-expression of `max_connections`: an over-cap
    /// connection is answered with an explicit Overloaded and closed —
    /// not silently left in the SYN backlog.
    #[test]
    fn slab_cap_sheds_with_explicit_overloaded() {
        let server = reactor_server(ServerOptions {
            max_connections: Some(2),
            ..ServerOptions::default()
        });
        let addr = server.local_addr();
        let mut keep = Vec::new();
        for i in 0..2u32 {
            let mut c = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
            let r = Request::new(rid(i), Op::Put {
                key: Key::from(format!("k{i}")),
                value: Value::from("v"),
            });
            assert_eq!(c.call(&r).unwrap().result, Ok(RespBody::Done));
            keep.push(c);
        }
        // The over-cap client gets a real answer: Overloaded, then close.
        let mut extra = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let r = Request::new(rid(9), Op::Get { key: Key::from("k0") });
        let resp = extra.call(&r).unwrap();
        assert_eq!(resp.id, r.id);
        assert_eq!(resp.result, Err(KvError::Overloaded));
        let stats = server.stats();
        assert!(stats.connections_refused >= 1);
        assert_eq!(stats.connections_accepted, 2);
        // In-cap connections keep working.
        let r2 = Request::new(rid(10), Op::Get { key: Key::from("k0") });
        assert!(keep[0].call(&r2).unwrap().result.is_ok());
        server.stop();
    }

    /// Tentpole: a parked request must NOT hold a reactor thread — other
    /// connections keep being served while one response waits, and the
    /// parked response arrives correctly once completed from outside.
    #[test]
    fn parked_request_does_not_block_the_reactor() {
        use crate::tcp::{Completer, Defer, DeferHandler, Served};
        let parked: Arc<Mutex<Vec<Completer>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = Arc::clone(&parked);
        let handler: Arc<DeferHandler> = Arc::new(move |req: Request, mut defer: Defer<'_>| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("park") {
                    registry.lock().push(defer.completer());
                    return Served::Parked;
                }
            }
            Served::Ready(Response {
                id: req.id,
                result: Ok(RespBody::Done),
            })
        });
        let server = TcpServer::bind_deferred(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
            ServerOptions {
                transport: Some(TransportKind::Reactor),
                // One reactor thread: if the park blocked it, the probe
                // connection below could not be served at all.
                reactor_threads: Some(1),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut parker = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let park_req = Request::new(rid(0), Op::Get { key: Key::from("park") });
        let parker_thread = std::thread::spawn(move || {
            let resp = parker.call(&park_req).unwrap();
            assert_eq!(resp.id, park_req.id);
            assert_eq!(resp.result, Ok(RespBody::Done));
        });
        // Wait until the request is actually parked on the single reactor.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while parked.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "request never parked");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The lone reactor thread must still serve other connections while
        // the first request is parked.
        let mut probe = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        for i in 1..=20u32 {
            let r = Request::new(rid(i), Op::Get { key: Key::from("probe") });
            let resp = probe.call(&r).unwrap();
            assert_eq!(resp.id, r.id, "reactor blocked by a parked request");
        }
        // Now complete the parked request from this thread.
        let c = parked.lock().pop().unwrap();
        let id = c.rid();
        c.complete(Response {
            id,
            result: Ok(RespBody::Done),
        });
        parker_thread.join().unwrap();
        server.stop();
    }

    /// Per-connection FIFO survives a park in the middle of a pipelined
    /// batch on the reactor: the pending slot fences later (already ready)
    /// responses until its completion arrives.
    #[test]
    fn parked_slot_preserves_pipeline_order_on_reactor() {
        use crate::tcp::{Completer, Defer, DeferHandler, Served};
        let parked: Arc<Mutex<Vec<Completer>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = Arc::clone(&parked);
        let handler: Arc<DeferHandler> = Arc::new(move |req: Request, mut defer: Defer<'_>| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("park") {
                    registry.lock().push(defer.completer());
                    return Served::Parked;
                }
            }
            Served::Ready(Response {
                id: req.id,
                result: Ok(RespBody::Done),
            })
        });
        let server = TcpServer::bind_deferred(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
            ServerOptions {
                transport: Some(TransportKind::Reactor),
                reactor_threads: Some(1),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let completer_thread = {
            let parked = Arc::clone(&parked);
            std::thread::spawn(move || loop {
                if let Some(c) = parked.lock().pop() {
                    std::thread::sleep(Duration::from_millis(50));
                    let id = c.rid();
                    c.complete(Response {
                        id,
                        result: Ok(RespBody::Done),
                    });
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            })
        };
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let batch = vec![
            Request::new(rid(0), Op::Get { key: Key::from("fast") }),
            Request::new(rid(1), Op::Get { key: Key::from("park") }),
            Request::new(rid(2), Op::Get { key: Key::from("fast") }),
        ];
        let resps = client.call_pipelined(&batch).unwrap();
        assert_eq!(resps.len(), 3);
        for (req, resp) in batch.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "park reordered reactor responses");
            assert_eq!(resp.result, Ok(RespBody::Done));
        }
        completer_thread.join().unwrap();
        server.stop();
    }

    /// A dropped completer's backstop `Timeout` flows through the
    /// injection path and unfences the connection's output queue.
    #[test]
    fn dropped_completer_backstop_reaches_reactor_client() {
        use crate::tcp::{Defer, DeferHandler, Served};
        let handler: Arc<DeferHandler> = Arc::new(move |req: Request, mut defer: Defer<'_>| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("lost") {
                    drop(defer.completer());
                    return Served::Parked;
                }
            }
            Served::Ready(Response {
                id: req.id,
                result: Ok(RespBody::Done),
            })
        });
        let server = TcpServer::bind_deferred(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
            ServerOptions {
                transport: Some(TransportKind::Reactor),
                reactor_threads: Some(1),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let batch = vec![
            Request::new(rid(0), Op::Get { key: Key::from("lost") }),
            Request::new(rid(1), Op::Get { key: Key::from("fine") }),
        ];
        let resps = client.call_pipelined(&batch).unwrap();
        assert_eq!(resps[0].result, Err(KvError::Timeout));
        assert_eq!(resps[1].id, batch[1].id);
        assert_eq!(resps[1].result, Ok(RespBody::Done));
        server.stop();
    }

    /// A malformed stream drops only its own connection, and is counted.
    #[test]
    fn protocol_error_drops_connection_and_counts() {
        let server = reactor_server(ServerOptions::default());
        let addr = server.local_addr();
        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
        bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        match bad.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("corrupt frame got {n} response bytes"),
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().protocol_error_drops == 0 {
            assert!(std::time::Instant::now() < deadline, "drop never counted");
            std::thread::yield_now();
        }
        // The server survived: a well-formed connection still works.
        let mut ok = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let r = Request::new(rid(0), Op::Put {
            key: Key::from("k"),
            value: Value::from("v"),
        });
        assert_eq!(ok.call(&r).unwrap().result, Ok(RespBody::Done));
        server.stop();
    }
}
