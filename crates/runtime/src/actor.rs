//! The event-driven programming model (section III-B of the paper).
//!
//! Controlets, the coordinator, the DLM, the shared log and workload clients
//! are all [`Actor`]s: deterministic state machines that react to events
//! (incoming messages, timers) by emitting actions (sends, timer arms,
//! simulated CPU charges) into a [`Context`]. The paper exposes this as the
//! `Register/On/Emit/Enable` callback API over connections; we express the
//! same model as a single `on_event` entry point, which makes the state
//! machine runnable by two interchangeable drivers:
//!
//! * [`crate::sim::Simulation`] — a virtual-time discrete-event simulator
//!   used for cluster-scale experiments (48-node sweeps, failover and
//!   transition timelines);
//! * [`crate::live::LiveRuntime`] — real threads and channels, used for
//!   integration tests and wall-clock latency measurements.

use bespokv_proto::NetMsg;
use bespokv_types::{Duration, Instant};
use std::any::Any;
use std::fmt;

/// An actor address within a runtime.
///
/// The cluster assembly layer assigns dense addresses: controlets first
/// (matching their `NodeId`), then services (coordinator, DLM, shared log),
/// then clients.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// An event delivered to an actor.
#[derive(Clone, Debug)]
pub enum Event {
    /// First event every actor receives, before any message.
    Start,
    /// A message arrived.
    Msg {
        /// Sender's address.
        from: Addr,
        /// The payload.
        msg: NetMsg,
    },
    /// A timer armed with [`Context::set_timer`] fired.
    Timer {
        /// Token passed when arming.
        token: u64,
    },
}

/// Side effects an actor requests while handling one event.
#[derive(Debug)]
pub enum Action {
    /// Send a message to another actor.
    Send {
        /// Destination.
        to: Addr,
        /// Payload.
        msg: NetMsg,
    },
    /// Arm a one-shot timer.
    Timer {
        /// Delay from now.
        delay: Duration,
        /// Token echoed in [`Event::Timer`].
        token: u64,
    },
}

/// Per-event execution context handed to [`Actor::on_event`].
pub struct Context {
    now: Instant,
    self_addr: Addr,
    actions: Vec<Action>,
    charge: Duration,
}

impl Context {
    /// Creates a context for one event dispatch. Drivers call this.
    pub fn new(now: Instant, self_addr: Addr) -> Self {
        Context {
            now,
            self_addr,
            actions: Vec::new(),
            charge: Duration::ZERO,
        }
    }

    /// Current time (virtual under the simulator, monotonic wall clock
    /// under the live runtime).
    #[inline]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// This actor's own address.
    #[inline]
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// Sends `msg` to `to`. Delivery order between a fixed (sender,
    /// receiver) pair is FIFO under both drivers.
    pub fn send(&mut self, to: Addr, msg: NetMsg) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a one-shot timer; [`Event::Timer`] with `token` fires after
    /// `delay`.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Accounts simulated CPU time for the work done while handling this
    /// event (e.g. a datalet operation). The simulator serializes an
    /// actor's events through this busy time, which is what produces
    /// saturation and throughput ceilings; the live runtime ignores it
    /// (real work takes real time there).
    pub fn charge(&mut self, cost: Duration) {
        self.charge += cost;
    }

    /// Total charge accumulated during this event.
    pub fn charged(&self) -> Duration {
        self.charge
    }

    /// Drains the requested actions. Drivers call this after dispatch.
    pub fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }
}

/// A deterministic event-driven state machine.
pub trait Actor: Send {
    /// Handles one event. All side effects go through `ctx`.
    fn on_event(&mut self, ev: Event, ctx: &mut Context);

    /// Downcast support, so harnesses can extract results from their own
    /// actor types after a run.
    fn as_any(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_proto::CoordMsg;

    struct Echo {
        seen: usize,
    }

    impl Actor for Echo {
        fn on_event(&mut self, ev: Event, ctx: &mut Context) {
            if let Event::Msg { from, msg } = ev {
                self.seen += 1;
                ctx.send(from, msg);
                ctx.charge(Duration::from_micros(2));
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_collects_actions_and_charges() {
        let mut actor = Echo { seen: 0 };
        let mut ctx = Context::new(Instant::ZERO, Addr(1));
        actor.on_event(
            Event::Msg {
                from: Addr(2),
                msg: NetMsg::Coord(CoordMsg::GetShardMap),
            },
            &mut ctx,
        );
        assert_eq!(actor.seen, 1);
        assert_eq!(ctx.charged(), Duration::from_micros(2));
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Send { to: Addr(2), .. }));
        // Draining empties the buffer.
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn downcast_recovers_concrete_actor() {
        let mut actor: Box<dyn Actor> = Box::new(Echo { seen: 7 });
        let echo = actor.as_any().downcast_mut::<Echo>().unwrap();
        assert_eq!(echo.seen, 7);
    }
}
