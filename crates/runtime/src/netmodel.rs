//! Network and CPU cost models for the discrete-event simulator.
//!
//! The simulator needs two things per message: how long the wire takes
//! (latency + serialization at a given bandwidth) and how much CPU the
//! endpoints burn moving it through the stack. The second is what the
//! paper's DPDK experiment (section E) changes: kernel-bypass removes most
//! of the per-message syscall/interrupt cost, cutting latency ~65% and
//! tripling throughput. We model exactly that knob.

use crate::actor::Addr;
use bespokv_types::shardmap::splitmix64;
use bespokv_types::{Duration, Instant};

/// Transport profile: what it costs to move one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportProfile {
    /// One-way propagation latency (switch + wire).
    pub base_latency: Duration,
    /// Link bandwidth in bytes/second (serialization delay = size/bw).
    pub bandwidth_bps: u64,
    /// Per-message CPU charged to *each* endpoint (syscalls, interrupts,
    /// memcpy through the kernel). This is the DPDK knob.
    pub per_msg_cpu: Duration,
    /// Bounded deterministic jitter added to latency (max value; actual
    /// jitter is derived from the message sequence number).
    pub jitter_max: Duration,
}

impl TransportProfile {
    /// Kernel TCP sockets on a 10 GbE datacenter network — calibrated to
    /// produce the paper's local-testbed RTTs (~100-200 us round trips).
    pub fn socket() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(25),
            bandwidth_bps: 10_000_000_000 / 8, // 10 Gbps
            per_msg_cpu: Duration::from_micros(12),
            jitter_max: Duration::from_micros(6),
        }
    }

    /// Kernel-bypass (DPDK) on the same fabric: same wire, a fraction of
    /// the per-message CPU and no kernel scheduling noise.
    pub fn dpdk() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(8),
            bandwidth_bps: 10_000_000_000 / 8,
            per_msg_cpu: Duration::from_micros(2),
            jitter_max: Duration::from_micros(1),
        }
    }

    /// A 1 Gbps cloud network (the paper's GCE setup).
    pub fn cloud_1g() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(80),
            bandwidth_bps: 1_000_000_000 / 8,
            per_msg_cpu: Duration::from_micros(12),
            jitter_max: Duration::from_micros(20),
        }
    }

    /// Wire time for a message of `size` bytes (latency + serialization +
    /// deterministic jitter keyed by `seq`).
    pub fn wire_time(&self, size: usize, seq: u64) -> Duration {
        let ser = Duration::from_nanos(
            (size as u128 * 1_000_000_000u128 / self.bandwidth_bps as u128) as u64,
        );
        let jitter = if self.jitter_max == Duration::ZERO {
            Duration::ZERO
        } else {
            Duration::from_nanos(splitmix64(seq) % self.jitter_max.as_nanos().max(1))
        };
        self.base_latency + ser + jitter
    }
}

/// Per-link fault probabilities. All probabilities are in `[0, 1]`; a
/// message draws once per transmission using the plan's seed and the
/// simulator's monotonically increasing event sequence, so the same seed
/// reproduces the exact same fault schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability the message is silently dropped.
    pub drop_p: f64,
    /// Probability an extra (delayed) copy of the message is delivered.
    pub dup_p: f64,
    /// Probability the message is held back long enough to arrive after
    /// messages sent later on the same link (FIFO violation).
    pub reorder_p: f64,
    /// Maximum extra delay applied to duplicated/reordered copies; the
    /// actual delay is drawn deterministically in `(0, reorder_delay_max]`.
    pub reorder_delay_max: Duration,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        reorder_p: 0.0,
        reorder_delay_max: Duration::from_millis(2),
    };

    /// Drop-only faults at probability `p`.
    pub fn drop(p: f64) -> Self {
        LinkFaults { drop_p: p, ..Self::NONE }
    }

    /// A generally lossy link: drops at `p`, duplicates and reorders at
    /// half that rate each.
    pub fn lossy(p: f64) -> Self {
        LinkFaults {
            drop_p: p,
            dup_p: p / 2.0,
            reorder_p: p / 2.0,
            reorder_delay_max: Duration::from_millis(2),
        }
    }

    fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.reorder_p <= 0.0
    }
}

/// A network partition separating two groups of actors for a window of
/// virtual time. While active, messages from side `a` to side `b` are
/// dropped; if `symmetric`, the reverse direction is cut too.
#[derive(Clone, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<Addr>,
    /// The other side.
    pub b: Vec<Addr>,
    /// When the partition starts.
    pub from: Instant,
    /// When it heals; `None` means it never heals.
    pub until: Option<Instant>,
    /// Whether traffic is cut in both directions (true) or only a→b.
    pub symmetric: bool,
}

impl Partition {
    fn blocks(&self, src: Addr, dst: Addr, now: Instant) -> bool {
        if now < self.from || self.until.is_some_and(|u| now >= u) {
            return false;
        }
        let fwd = self.a.contains(&src) && self.b.contains(&dst);
        let rev = self.b.contains(&src) && self.a.contains(&dst);
        fwd || (self.symmetric && rev)
    }
}

/// What the fault layer decided for one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally (in FIFO order, nominal delay).
    Deliver,
    /// Drop silently because of link loss.
    Drop,
    /// Drop silently because an active partition cuts the link.
    PartitionDrop,
    /// Deliver normally, plus an extra copy arriving `dup_extra` later
    /// (the copy bypasses the FIFO clamp, so it may also be reordered).
    Duplicate {
        /// Extra delay of the duplicate copy past the original arrival.
        dup_extra: Duration,
    },
    /// Deliver late and outside the link's FIFO order: the message is held
    /// for `extra` beyond its nominal delay while later sends overtake it.
    Reorder {
        /// Extra holding delay past the nominal wire time.
        extra: Duration,
    },
}

/// A seeded, replayable fault schedule attached to the [`NetworkModel`].
///
/// Decisions are pure functions of `(seed, seq)` where `seq` is the
/// simulator's event sequence number, so a run with the same seed and the
/// same workload replays the identical failure schedule — drops, duplicate
/// copies, reorderings, and partition windows all land on the same
/// messages.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    default: Option<LinkFaults>,
    link_overrides: Vec<(Addr, Addr, LinkFaults)>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default: None,
            link_overrides: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Applies `faults` to every link without a more specific override.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.default = Some(faults);
        self
    }

    /// Applies `faults` to the directional link `from → to` only.
    pub fn with_link(mut self, from: Addr, to: Addr, faults: LinkFaults) -> Self {
        self.link_overrides.push((from, to, faults));
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Convenience: symmetric partition between `a` and `b` from `from`
    /// until `until`.
    pub fn with_symmetric_partition(
        self,
        a: Vec<Addr>,
        b: Vec<Addr>,
        from: Instant,
        until: Instant,
    ) -> Self {
        self.with_partition(Partition {
            a,
            b,
            from,
            until: Some(until),
            symmetric: true,
        })
    }

    /// Convenience: one-way partition dropping `a → b` traffic only.
    pub fn with_one_way_partition(
        self,
        a: Vec<Addr>,
        b: Vec<Addr>,
        from: Instant,
        until: Instant,
    ) -> Self {
        self.with_partition(Partition {
            a,
            b,
            from,
            until: Some(until),
            symmetric: false,
        })
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn faults_for(&self, from: Addr, to: Addr) -> LinkFaults {
        self.link_overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, lf)| *lf)
            .or(self.default)
            .unwrap_or(LinkFaults::NONE)
    }

    /// Whether an active partition currently cuts `from → to`.
    pub fn partitioned(&self, from: Addr, to: Addr, now: Instant) -> bool {
        self.partitions.iter().any(|p| p.blocks(from, to, now))
    }

    /// Decides the fate of one transmission. `seq` must be unique per
    /// transmission and deterministic across runs (the simulator's event
    /// sequence number qualifies).
    pub fn decide(&self, from: Addr, to: Addr, now: Instant, seq: u64) -> FaultOutcome {
        if from == to {
            return FaultOutcome::Deliver; // self-sends skip the network
        }
        if self.partitioned(from, to, now) {
            return FaultOutcome::PartitionDrop;
        }
        let lf = self.faults_for(from, to);
        if lf.is_none() {
            return FaultOutcome::Deliver;
        }
        // Three independent uniform draws from a splitmix chain keyed on
        // (seed, seq); stateless, so replay order never matters.
        let mut s = splitmix64(self.seed ^ splitmix64(seq.wrapping_add(0x9e37_79b9_7f4a_7c15)));
        let mut draw = || {
            s = splitmix64(s);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let (u_drop, u_dup, u_reorder, u_delay) = (draw(), draw(), draw(), draw());
        let extra = Duration::from_nanos(
            1 + (u_delay * lf.reorder_delay_max.as_nanos().max(1) as f64) as u64,
        );
        if u_drop < lf.drop_p {
            FaultOutcome::Drop
        } else if u_dup < lf.dup_p {
            FaultOutcome::Duplicate { dup_extra: extra }
        } else if u_reorder < lf.reorder_p {
            FaultOutcome::Reorder { extra }
        } else {
            FaultOutcome::Deliver
        }
    }
}

/// How a stalled node misbehaves during a [`StallWindow`].
///
/// All three are *gray* failures: the node stays up, its outbound traffic
/// (heartbeats, acks it already produced) keeps flowing, and failure
/// detectors that watch liveness never fire. Only inbound progress is
/// impaired, which is exactly the class the fail-stop machinery (crash +
/// failover) cannot see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// The node's mailbox stops draining entirely: every inbound message
    /// (client, replication, control) is held until the window closes.
    Wedge,
    /// The node processes everything, but each inbound message is delayed
    /// by `delay` (plus bounded seeded jitter) — a slow node, not a dead
    /// one.
    Slow {
        /// Extra per-message inbound delay.
        delay: Duration,
    },
    /// Gray partition: heartbeats and replication traffic pass, but
    /// client/relay traffic inbound to the node is held until the window
    /// closes. The coordinator sees a live node; clients see a black hole.
    Gray,
}

/// One stall episode: `node` misbehaves per `kind` for `[from, until)`.
#[derive(Clone, Copy, Debug)]
pub struct StallWindow {
    /// The node whose inbound traffic stalls.
    pub node: Addr,
    /// Window start (inclusive, by message arrival time).
    pub from: Instant,
    /// Window end (exclusive); held messages are released here.
    pub until: Instant,
    /// How the node misbehaves.
    pub kind: StallKind,
}

/// A seeded, replayable stall schedule — the gray-failure counterpart of
/// [`FaultPlan`]. Where `FaultPlan` loses or reorders individual messages,
/// `StallPlan` wedges *nodes*: inbound messages that arrive during a
/// window are held (or delayed) deterministically, while the node's own
/// outbound traffic is untouched so liveness detectors stay green.
///
/// Extra delays are pure functions of `(seed, seq)`, so the same seed and
/// workload replay the identical stall schedule.
#[derive(Clone, Debug, Default)]
pub struct StallPlan {
    seed: u64,
    windows: Vec<StallWindow>,
}

impl StallPlan {
    /// An empty plan (no stalls) with the given seed.
    pub fn new(seed: u64) -> Self {
        StallPlan { seed, windows: Vec::new() }
    }

    /// Adds an arbitrary stall window.
    pub fn with_window(mut self, w: StallWindow) -> Self {
        self.windows.push(w);
        self
    }

    /// Convenience: full mailbox wedge of `node` for `[from, until)`.
    pub fn with_wedge(self, node: Addr, from: Instant, until: Instant) -> Self {
        self.with_window(StallWindow { node, from, until, kind: StallKind::Wedge })
    }

    /// Convenience: slow-node window adding `delay` per inbound message.
    pub fn with_slow(self, node: Addr, from: Instant, until: Instant, delay: Duration) -> Self {
        self.with_window(StallWindow { node, from, until, kind: StallKind::Slow { delay } })
    }

    /// Convenience: gray partition holding only client traffic.
    pub fn with_gray(self, node: Addr, from: Instant, until: Instant) -> Self {
        self.with_window(StallWindow { node, from, until, kind: StallKind::Gray })
    }

    /// The seed this plan draws jitter from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured windows.
    pub fn windows(&self) -> &[StallWindow] {
        &self.windows
    }

    /// True if any window (of any kind) covers `node` at `now`.
    pub fn stalled(&self, node: Addr, now: Instant) -> bool {
        self.windows
            .iter()
            .any(|w| w.node == node && now >= w.from && now < w.until)
    }

    /// Extra inbound delay for a message arriving at `to` at `arrival`.
    /// `is_client` distinguishes client/relay traffic (held by `Gray`)
    /// from replication/control traffic (which `Gray` lets through).
    /// Returns [`Duration::ZERO`] when no window applies.
    ///
    /// Held messages are released at the window end plus a small seeded
    /// stagger (so a wedge releasing hundreds of messages does not create
    /// an artificial perfectly-simultaneous burst, and release order is a
    /// deterministic function of `seq`, not of heap tie-breaking).
    pub fn stall_delay(&self, to: Addr, is_client: bool, arrival: Instant, seq: u64) -> Duration {
        let mut extra = Duration::ZERO;
        for w in &self.windows {
            if w.node != to || arrival < w.from || arrival >= w.until {
                continue;
            }
            let held = match w.kind {
                StallKind::Wedge => {
                    let stagger =
                        Duration::from_nanos(splitmix64(self.seed ^ splitmix64(seq)) % 10_000);
                    (w.until - arrival) + stagger
                }
                StallKind::Slow { delay } => {
                    let jitter = Duration::from_nanos(
                        splitmix64(self.seed ^ splitmix64(seq))
                            % delay.as_nanos().clamp(1, 1_000_000),
                    );
                    delay + jitter
                }
                StallKind::Gray => {
                    if !is_client {
                        continue;
                    }
                    let stagger =
                        Duration::from_nanos(splitmix64(self.seed ^ splitmix64(seq)) % 10_000);
                    (w.until - arrival) + stagger
                }
            };
            extra = extra.max(held);
        }
        extra
    }
}

/// Network model: resolves the profile for a (from, to) pair.
///
/// The default is a uniform fabric; tests and the DPDK experiment install
/// overrides. Messages an actor sends to itself skip the network entirely.
/// An optional [`FaultPlan`] layers deterministic drop/duplicate/reorder
/// faults and partitions on top of the latency model, and an optional
/// [`StallPlan`] layers gray-failure stalls (wedged/slow/gray nodes) on
/// top of both.
pub struct NetworkModel {
    default: TransportProfile,
    overrides: Vec<(Addr, Addr, TransportProfile)>,
    faults: Option<FaultPlan>,
    stalls: Option<StallPlan>,
}

impl NetworkModel {
    /// Uniform fabric with the given profile.
    pub fn uniform(profile: TransportProfile) -> Self {
        NetworkModel {
            default: profile,
            overrides: Vec::new(),
            faults: None,
            stalls: None,
        }
    }

    /// Installs a per-pair override (directional).
    pub fn with_override(mut self, from: Addr, to: Addr, profile: TransportProfile) -> Self {
        self.overrides.push((from, to, profile));
        self
    }

    /// Attaches a fault plan; the simulator consults it per transmission.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Attaches a stall plan; the simulator consults it per delivery.
    pub fn with_stalls(mut self, plan: StallPlan) -> Self {
        self.stalls = Some(plan);
        self
    }

    /// The attached stall plan, if any.
    pub fn stalls(&self) -> Option<&StallPlan> {
        self.stalls.as_ref()
    }

    /// Extra gray-failure delay for a message arriving at `to` at
    /// `arrival` ([`Duration::ZERO`] when no plan or window applies).
    /// Self-sends never stall (the node is talking to itself in-process).
    pub fn stall_extra(
        &self,
        from: Addr,
        to: Addr,
        is_client: bool,
        arrival: Instant,
        seq: u64,
    ) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        match &self.stalls {
            Some(plan) => plan.stall_delay(to, is_client, arrival, seq),
            None => Duration::ZERO,
        }
    }

    /// Fault decision for one transmission ([`FaultOutcome::Deliver`] when
    /// no plan is attached).
    pub fn fault_decision(&self, from: Addr, to: Addr, now: Instant, seq: u64) -> FaultOutcome {
        match &self.faults {
            Some(plan) => plan.decide(from, to, now, seq),
            None => FaultOutcome::Deliver,
        }
    }

    /// Profile used between `from` and `to`.
    pub fn profile(&self, from: Addr, to: Addr) -> TransportProfile {
        self.overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, p)| *p)
            .unwrap_or(self.default)
    }

    /// Total one-way delivery delay for a message.
    pub fn delivery_delay(&self, from: Addr, to: Addr, size: usize, seq: u64) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.profile(from, to).wire_time(size, seq)
    }

    /// Per-endpoint CPU charge for a message on this link.
    pub fn endpoint_cpu(&self, from: Addr, to: Addr) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.profile(from, to).per_msg_cpu
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::uniform(TransportProfile::socket())
    }
}

/// CPU cost model for datalet operations, used by controlets to charge the
/// simulator for local work. Calibrated from the real engine
/// microbenchmarks (see `crates/bench/benches/datalet_engines.rs` and
/// EXPERIMENTS.md); the *ratios* between engines are what matter for the
/// paper's figures.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of a point read.
    pub get: Duration,
    /// Cost of a point write.
    pub put: Duration,
    /// Fixed cost of a scan plus per-returned-entry cost.
    pub scan_base: Duration,
    /// Per-entry scan cost.
    pub scan_per_entry: Duration,
    /// Controlet request-handling overhead (parse, route, bookkeeping).
    pub controlet_overhead: Duration,
}

impl CostModel {
    /// In-memory hash table (`tHT`, `tRedis`): sub-microsecond point ops.
    pub fn tht() -> Self {
        CostModel {
            get: Duration::from_nanos(600),
            put: Duration::from_nanos(800),
            scan_base: Duration::from_micros(50),
            scan_per_entry: Duration::from_nanos(200),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// Ordered tree (`tMT`): fast reads, slower writes than a hash table,
    /// cheap ordered scans.
    pub fn tmt() -> Self {
        CostModel {
            get: Duration::from_nanos(900),
            put: Duration::from_micros(2),
            scan_base: Duration::from_micros(4),
            scan_per_entry: Duration::from_nanos(150),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// Persistent log (`tLog`): appends buffered to disk, reads hit the
    /// device; both carry I/O cost.
    pub fn tlog() -> Self {
        CostModel {
            get: Duration::from_micros(9),
            put: Duration::from_micros(6),
            scan_base: Duration::from_micros(50),
            scan_per_entry: Duration::from_micros(1),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// LSM tree (`tLSM`, `tSSDB`): cheap writes (memtable append), reads
    /// pay run-search amplification, scans pay merge cost.
    pub fn tlsm() -> Self {
        CostModel {
            get: Duration::from_micros(3),
            put: Duration::from_nanos(1400),
            scan_base: Duration::from_micros(10),
            scan_per_entry: Duration::from_nanos(400),
            controlet_overhead: Duration::from_micros(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let p = TransportProfile::socket();
        let small = p.wire_time(64, 0);
        let big = p.wire_time(1 << 20, 0);
        assert!(big > small);
        // 1 MiB at 10 Gbps is ~839 us of serialization.
        assert!(big.as_micros() > 800, "{big:?}");
    }

    #[test]
    fn dpdk_beats_socket() {
        let s = TransportProfile::socket();
        let d = TransportProfile::dpdk();
        assert!(d.wire_time(128, 0) < s.wire_time(128, 0));
        assert!(d.per_msg_cpu < s.per_msg_cpu);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = TransportProfile::socket();
        for seq in 0..1000 {
            let t1 = p.wire_time(100, seq);
            let t2 = p.wire_time(100, seq);
            assert_eq!(t1, t2);
            assert!(t1 <= p.base_latency + p.wire_time(100, seq));
            assert!(
                t1.as_nanos()
                    <= (p.base_latency + p.jitter_max).as_nanos()
                        + 1_000_000 // serialization slack
            );
        }
    }

    #[test]
    fn self_sends_are_free() {
        let net = NetworkModel::default();
        assert_eq!(net.delivery_delay(Addr(1), Addr(1), 4096, 0), Duration::ZERO);
        assert_eq!(net.endpoint_cpu(Addr(1), Addr(1)), Duration::ZERO);
    }

    #[test]
    fn overrides_apply_directionally() {
        let net = NetworkModel::uniform(TransportProfile::socket()).with_override(
            Addr(1),
            Addr(2),
            TransportProfile::dpdk(),
        );
        assert_eq!(net.profile(Addr(1), Addr(2)), TransportProfile::dpdk());
        assert_eq!(net.profile(Addr(2), Addr(1)), TransportProfile::socket());
    }

    #[test]
    fn fault_decisions_replay_exactly() {
        let plan = FaultPlan::new(42).with_default(LinkFaults::lossy(0.10));
        let a = Addr(1);
        let b = Addr(2);
        let first: Vec<FaultOutcome> = (0..10_000)
            .map(|seq| plan.decide(a, b, Instant::ZERO, seq))
            .collect();
        let second: Vec<FaultOutcome> = (0..10_000)
            .map(|seq| plan.decide(a, b, Instant::ZERO, seq))
            .collect();
        assert_eq!(first, second);
        // Observed rates land near the configured probabilities.
        let drops = first.iter().filter(|o| **o == FaultOutcome::Drop).count();
        assert!((500..1500).contains(&drops), "drops = {drops}");
        assert!(first
            .iter()
            .any(|o| matches!(o, FaultOutcome::Duplicate { .. })));
        assert!(first
            .iter()
            .any(|o| matches!(o, FaultOutcome::Reorder { .. })));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let p1 = FaultPlan::new(1).with_default(LinkFaults::drop(0.05));
        let p2 = FaultPlan::new(2).with_default(LinkFaults::drop(0.05));
        let s1: Vec<_> = (0..2000).map(|s| p1.decide(Addr(0), Addr(1), Instant::ZERO, s)).collect();
        let s2: Vec<_> = (0..2000).map(|s| p2.decide(Addr(0), Addr(1), Instant::ZERO, s)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn link_overrides_beat_default() {
        let plan = FaultPlan::new(7)
            .with_default(LinkFaults::drop(1.0))
            .with_link(Addr(1), Addr(2), LinkFaults::NONE);
        // Clean override link always delivers; default link always drops.
        for seq in 0..100 {
            assert_eq!(
                plan.decide(Addr(1), Addr(2), Instant::ZERO, seq),
                FaultOutcome::Deliver
            );
            assert_eq!(
                plan.decide(Addr(2), Addr(1), Instant::ZERO, seq),
                FaultOutcome::Drop
            );
        }
        // Self-sends never fault.
        assert_eq!(
            plan.decide(Addr(3), Addr(3), Instant::ZERO, 0),
            FaultOutcome::Deliver
        );
    }

    #[test]
    fn partitions_respect_direction_and_heal_time() {
        let t0 = Instant::ZERO + Duration::from_millis(100);
        let t1 = Instant::ZERO + Duration::from_millis(200);
        let one_way = FaultPlan::new(0).with_one_way_partition(
            vec![Addr(0)],
            vec![Addr(1)],
            t0,
            t1,
        );
        let mid = Instant::ZERO + Duration::from_millis(150);
        assert_eq!(
            one_way.decide(Addr(0), Addr(1), mid, 0),
            FaultOutcome::PartitionDrop
        );
        // Reverse direction unaffected by a one-way cut.
        assert_eq!(one_way.decide(Addr(1), Addr(0), mid, 0), FaultOutcome::Deliver);
        // Before start and after heal the link is clean.
        assert_eq!(
            one_way.decide(Addr(0), Addr(1), Instant::ZERO, 0),
            FaultOutcome::Deliver
        );
        assert_eq!(one_way.decide(Addr(0), Addr(1), t1, 0), FaultOutcome::Deliver);

        let sym = FaultPlan::new(0).with_symmetric_partition(
            vec![Addr(0)],
            vec![Addr(1)],
            t0,
            t1,
        );
        assert_eq!(
            sym.decide(Addr(1), Addr(0), mid, 0),
            FaultOutcome::PartitionDrop
        );
    }

    #[test]
    fn wedge_holds_everything_until_window_end() {
        let t0 = Instant::ZERO + Duration::from_millis(100);
        let t1 = Instant::ZERO + Duration::from_millis(300);
        let plan = StallPlan::new(11).with_wedge(Addr(2), t0, t1);
        let arrival = Instant::ZERO + Duration::from_millis(150);
        for (seq, is_client) in [(0u64, true), (1, false), (2, true)] {
            let extra = plan.stall_delay(Addr(2), is_client, arrival, seq);
            // Released at/after window end, stagger bounded at 10 us.
            assert!(arrival + extra >= t1, "{extra:?}");
            assert!(arrival + extra < t1 + Duration::from_micros(10));
        }
        // Outside the window, and on other nodes, no delay.
        assert_eq!(plan.stall_delay(Addr(2), true, t1, 0), Duration::ZERO);
        assert_eq!(plan.stall_delay(Addr(1), true, arrival, 0), Duration::ZERO);
        assert!(plan.stalled(Addr(2), arrival));
        assert!(!plan.stalled(Addr(2), t1));
    }

    #[test]
    fn gray_holds_only_client_traffic() {
        let t0 = Instant::ZERO + Duration::from_millis(100);
        let t1 = Instant::ZERO + Duration::from_millis(300);
        let plan = StallPlan::new(5).with_gray(Addr(3), t0, t1);
        let arrival = Instant::ZERO + Duration::from_millis(200);
        // Client traffic is held; replication/control passes clean — a
        // liveness detector watching heartbeats never fires.
        assert!(plan.stall_delay(Addr(3), true, arrival, 7) >= t1 - arrival);
        assert_eq!(plan.stall_delay(Addr(3), false, arrival, 7), Duration::ZERO);
    }

    #[test]
    fn slow_window_adds_bounded_deterministic_delay() {
        let t0 = Instant::ZERO;
        let t1 = Instant::ZERO + Duration::from_secs(1);
        let d = Duration::from_millis(5);
        let plan = StallPlan::new(9).with_slow(Addr(1), t0, t1, d);
        let arrival = Instant::ZERO + Duration::from_millis(10);
        for seq in 0..100 {
            let e1 = plan.stall_delay(Addr(1), true, arrival, seq);
            let e2 = plan.stall_delay(Addr(1), true, arrival, seq);
            assert_eq!(e1, e2, "same seed+seq must replay exactly");
            assert!(e1 >= d && e1 <= d + Duration::from_millis(1), "{e1:?}");
        }
        // Different seeds draw different jitter somewhere in 100 messages.
        let other = StallPlan::new(10).with_slow(Addr(1), t0, t1, d);
        assert!((0..100).any(|s| {
            plan.stall_delay(Addr(1), true, arrival, s)
                != other.stall_delay(Addr(1), true, arrival, s)
        }));
    }

    #[test]
    fn network_model_stall_extra_skips_self_sends() {
        let plan = StallPlan::new(1).with_wedge(
            Addr(1),
            Instant::ZERO,
            Instant::ZERO + Duration::from_secs(1),
        );
        let net = NetworkModel::default().with_stalls(plan);
        assert_eq!(
            net.stall_extra(Addr(1), Addr(1), true, Instant::ZERO, 0),
            Duration::ZERO
        );
        assert!(net.stall_extra(Addr(0), Addr(1), true, Instant::ZERO, 0) > Duration::ZERO);
        assert!(net.stalls().is_some());
    }

    #[test]
    fn cost_models_encode_engine_tradeoffs() {
        // LSM writes cheaper than B-tree writes; B-tree reads cheaper than
        // LSM reads — the asymmetry behind Fig 6.
        assert!(CostModel::tlsm().put < CostModel::tmt().put);
        assert!(CostModel::tmt().get < CostModel::tlsm().get);
        // The persistent log is the slowest at both.
        assert!(CostModel::tlog().get > CostModel::tlsm().get);
        assert!(CostModel::tlog().put > CostModel::tlsm().put);
    }
}
