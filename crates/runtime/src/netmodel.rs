//! Network and CPU cost models for the discrete-event simulator.
//!
//! The simulator needs two things per message: how long the wire takes
//! (latency + serialization at a given bandwidth) and how much CPU the
//! endpoints burn moving it through the stack. The second is what the
//! paper's DPDK experiment (section E) changes: kernel-bypass removes most
//! of the per-message syscall/interrupt cost, cutting latency ~65% and
//! tripling throughput. We model exactly that knob.

use crate::actor::Addr;
use bespokv_types::shardmap::splitmix64;
use bespokv_types::Duration;

/// Transport profile: what it costs to move one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportProfile {
    /// One-way propagation latency (switch + wire).
    pub base_latency: Duration,
    /// Link bandwidth in bytes/second (serialization delay = size/bw).
    pub bandwidth_bps: u64,
    /// Per-message CPU charged to *each* endpoint (syscalls, interrupts,
    /// memcpy through the kernel). This is the DPDK knob.
    pub per_msg_cpu: Duration,
    /// Bounded deterministic jitter added to latency (max value; actual
    /// jitter is derived from the message sequence number).
    pub jitter_max: Duration,
}

impl TransportProfile {
    /// Kernel TCP sockets on a 10 GbE datacenter network — calibrated to
    /// produce the paper's local-testbed RTTs (~100-200 us round trips).
    pub fn socket() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(25),
            bandwidth_bps: 10_000_000_000 / 8, // 10 Gbps
            per_msg_cpu: Duration::from_micros(12),
            jitter_max: Duration::from_micros(6),
        }
    }

    /// Kernel-bypass (DPDK) on the same fabric: same wire, a fraction of
    /// the per-message CPU and no kernel scheduling noise.
    pub fn dpdk() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(8),
            bandwidth_bps: 10_000_000_000 / 8,
            per_msg_cpu: Duration::from_micros(2),
            jitter_max: Duration::from_micros(1),
        }
    }

    /// A 1 Gbps cloud network (the paper's GCE setup).
    pub fn cloud_1g() -> Self {
        TransportProfile {
            base_latency: Duration::from_micros(80),
            bandwidth_bps: 1_000_000_000 / 8,
            per_msg_cpu: Duration::from_micros(12),
            jitter_max: Duration::from_micros(20),
        }
    }

    /// Wire time for a message of `size` bytes (latency + serialization +
    /// deterministic jitter keyed by `seq`).
    pub fn wire_time(&self, size: usize, seq: u64) -> Duration {
        let ser = Duration::from_nanos(
            (size as u128 * 1_000_000_000u128 / self.bandwidth_bps as u128) as u64,
        );
        let jitter = if self.jitter_max == Duration::ZERO {
            Duration::ZERO
        } else {
            Duration::from_nanos(splitmix64(seq) % self.jitter_max.as_nanos().max(1))
        };
        self.base_latency + ser + jitter
    }
}

/// Network model: resolves the profile for a (from, to) pair.
///
/// The default is a uniform fabric; tests and the DPDK experiment install
/// overrides. Messages an actor sends to itself skip the network entirely.
pub struct NetworkModel {
    default: TransportProfile,
    overrides: Vec<(Addr, Addr, TransportProfile)>,
}

impl NetworkModel {
    /// Uniform fabric with the given profile.
    pub fn uniform(profile: TransportProfile) -> Self {
        NetworkModel {
            default: profile,
            overrides: Vec::new(),
        }
    }

    /// Installs a per-pair override (directional).
    pub fn with_override(mut self, from: Addr, to: Addr, profile: TransportProfile) -> Self {
        self.overrides.push((from, to, profile));
        self
    }

    /// Profile used between `from` and `to`.
    pub fn profile(&self, from: Addr, to: Addr) -> TransportProfile {
        self.overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, p)| *p)
            .unwrap_or(self.default)
    }

    /// Total one-way delivery delay for a message.
    pub fn delivery_delay(&self, from: Addr, to: Addr, size: usize, seq: u64) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.profile(from, to).wire_time(size, seq)
    }

    /// Per-endpoint CPU charge for a message on this link.
    pub fn endpoint_cpu(&self, from: Addr, to: Addr) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.profile(from, to).per_msg_cpu
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::uniform(TransportProfile::socket())
    }
}

/// CPU cost model for datalet operations, used by controlets to charge the
/// simulator for local work. Calibrated from the real engine
/// microbenchmarks (see `crates/bench/benches/datalet_engines.rs` and
/// EXPERIMENTS.md); the *ratios* between engines are what matter for the
/// paper's figures.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of a point read.
    pub get: Duration,
    /// Cost of a point write.
    pub put: Duration,
    /// Fixed cost of a scan plus per-returned-entry cost.
    pub scan_base: Duration,
    /// Per-entry scan cost.
    pub scan_per_entry: Duration,
    /// Controlet request-handling overhead (parse, route, bookkeeping).
    pub controlet_overhead: Duration,
}

impl CostModel {
    /// In-memory hash table (`tHT`, `tRedis`): sub-microsecond point ops.
    pub fn tht() -> Self {
        CostModel {
            get: Duration::from_nanos(600),
            put: Duration::from_nanos(800),
            scan_base: Duration::from_micros(50),
            scan_per_entry: Duration::from_nanos(200),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// Ordered tree (`tMT`): fast reads, slower writes than a hash table,
    /// cheap ordered scans.
    pub fn tmt() -> Self {
        CostModel {
            get: Duration::from_nanos(900),
            put: Duration::from_micros(2),
            scan_base: Duration::from_micros(4),
            scan_per_entry: Duration::from_nanos(150),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// Persistent log (`tLog`): appends buffered to disk, reads hit the
    /// device; both carry I/O cost.
    pub fn tlog() -> Self {
        CostModel {
            get: Duration::from_micros(9),
            put: Duration::from_micros(6),
            scan_base: Duration::from_micros(50),
            scan_per_entry: Duration::from_micros(1),
            controlet_overhead: Duration::from_micros(3),
        }
    }

    /// LSM tree (`tLSM`, `tSSDB`): cheap writes (memtable append), reads
    /// pay run-search amplification, scans pay merge cost.
    pub fn tlsm() -> Self {
        CostModel {
            get: Duration::from_micros(3),
            put: Duration::from_nanos(1400),
            scan_base: Duration::from_micros(10),
            scan_per_entry: Duration::from_nanos(400),
            controlet_overhead: Duration::from_micros(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let p = TransportProfile::socket();
        let small = p.wire_time(64, 0);
        let big = p.wire_time(1 << 20, 0);
        assert!(big > small);
        // 1 MiB at 10 Gbps is ~839 us of serialization.
        assert!(big.as_micros() > 800, "{big:?}");
    }

    #[test]
    fn dpdk_beats_socket() {
        let s = TransportProfile::socket();
        let d = TransportProfile::dpdk();
        assert!(d.wire_time(128, 0) < s.wire_time(128, 0));
        assert!(d.per_msg_cpu < s.per_msg_cpu);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = TransportProfile::socket();
        for seq in 0..1000 {
            let t1 = p.wire_time(100, seq);
            let t2 = p.wire_time(100, seq);
            assert_eq!(t1, t2);
            assert!(t1 <= p.base_latency + p.wire_time(100, seq));
            assert!(
                t1.as_nanos()
                    <= (p.base_latency + p.jitter_max).as_nanos()
                        + 1_000_000 // serialization slack
            );
        }
    }

    #[test]
    fn self_sends_are_free() {
        let net = NetworkModel::default();
        assert_eq!(net.delivery_delay(Addr(1), Addr(1), 4096, 0), Duration::ZERO);
        assert_eq!(net.endpoint_cpu(Addr(1), Addr(1)), Duration::ZERO);
    }

    #[test]
    fn overrides_apply_directionally() {
        let net = NetworkModel::uniform(TransportProfile::socket()).with_override(
            Addr(1),
            Addr(2),
            TransportProfile::dpdk(),
        );
        assert_eq!(net.profile(Addr(1), Addr(2)), TransportProfile::dpdk());
        assert_eq!(net.profile(Addr(2), Addr(1)), TransportProfile::socket());
    }

    #[test]
    fn cost_models_encode_engine_tradeoffs() {
        // LSM writes cheaper than B-tree writes; B-tree reads cheaper than
        // LSM reads — the asymmetry behind Fig 6.
        assert!(CostModel::tlsm().put < CostModel::tmt().put);
        assert!(CostModel::tmt().get < CostModel::tlsm().get);
        // The persistent log is the slowest at both.
        assert!(CostModel::tlog().get > CostModel::tlsm().get);
        assert!(CostModel::tlog().put > CostModel::tlsm().put);
    }
}
