//! Event-driven runtime for bespoKV.
//!
//! The paper builds its control plane on an asynchronous event-driven
//! network programming framework (section III-B). This crate is that
//! framework, with one extra property the evaluation needs: the same
//! state-machine code runs under two drivers.
//!
//! * [`actor`] — the programming model: [`actor::Actor`] state machines,
//!   events (messages/timers), and the action-collecting [`actor::Context`].
//! * [`sim`] — a deterministic discrete-event simulator (virtual time,
//!   busy-server capacity model, network latency/bandwidth/jitter model).
//!   Cluster-scale experiments (48-node sweeps, failover and transition
//!   timelines) run here.
//! * [`live`] — a thread-per-actor driver over crossbeam channels with
//!   real timers; integration tests and wall-clock measurements run here.
//! * [`tcp`] — a real TCP server/client speaking any protocol parser, for
//!   the client edge and the socket-vs-kernel-bypass comparison. Two
//!   transports back the server behind the [`tcp::EdgeTransport`] seam:
//!   blocking thread-per-connection, and the epoll [`reactor`] for
//!   tens-of-thousands-of-connections scale.
//! * [`netmodel`] — transport profiles (socket / DPDK / 1 Gbps cloud) and
//!   datalet cost models used by the simulator.

pub mod actor;
pub mod live;
pub mod netmodel;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod sim;
pub mod tcp;

pub use actor::{Action, Actor, Addr, Context, Event};
pub use live::{LiveRuntime, Mailbox};
pub use netmodel::{
    CostModel, FaultOutcome, FaultPlan, LinkFaults, NetworkModel, Partition, StallKind,
    StallPlan, StallWindow, TransportProfile,
};
pub use sim::{SimStats, Simulation};
pub use tcp::{
    Completer, Defer, DeferHandler, Served, ServerOptions, TcpClient, TcpServer, TransportKind,
};
