//! Deterministic discrete-event simulator (virtual time driver).
//!
//! Executes a set of [`Actor`]s under a virtual clock with a network model:
//! message delivery costs wire time (latency + serialization + bounded
//! deterministic jitter), endpoints pay per-message CPU, and each actor is a
//! single-core server — events queue behind its `busy_until` horizon. That
//! busy-server model is what produces saturation curves, so the cluster
//! sweeps in the paper's figures (throughput vs node count, latency vs
//! offered load) come out of the same controlet code that runs live.
//!
//! Determinism: the event queue is totally ordered by (time, sequence);
//! jitter is derived from the sequence number; actors may use their own
//! seeded RNGs. Two runs with the same inputs produce identical histories.

use crate::actor::{Action, Actor, Addr, Context, Event};
use crate::netmodel::{FaultOutcome, NetworkModel};
use bespokv_types::{Duration, Instant};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

struct Scheduled {
    at: Instant,
    seq: u64,
    target: Addr,
    ev: Event,
    /// When this event first arrived at the target's queue; preserved
    /// across busy-server requeues so total queue delay is measurable.
    enqueued_at: Instant,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot {
    actor: Option<Box<dyn Actor>>,
    busy_until: Instant,
    alive: bool,
}

/// Aggregate counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched to actors.
    pub events: u64,
    /// Messages delivered (subset of events).
    pub messages: u64,
    /// Events dropped because the target was dead.
    pub dropped: u64,
    /// Messages bounced back to their sender (connection refused).
    pub bounced: u64,
    /// Messages dropped by the fault plan (link loss).
    pub faults_dropped: u64,
    /// Messages duplicated by the fault plan.
    pub faults_duplicated: u64,
    /// Messages reordered (held past their FIFO slot) by the fault plan.
    pub faults_reordered: u64,
    /// Messages dropped by an active partition window.
    pub partition_drops: u64,
    /// Messages held (or slowed) by a gray-failure stall window.
    pub stalled: u64,
    /// Client messages bounced with `Overloaded` because their virtual
    /// queue delay exceeded the configured bound.
    pub overload_shed: u64,
}

/// Translates a message sent to a dead actor into an error reply for the
/// sender (TCP connection-refused semantics). Return `None` to drop
/// silently instead.
pub type BounceFn =
    Box<dyn Fn(Addr, &bespokv_proto::NetMsg) -> Option<bespokv_proto::NetMsg> + Send>;

/// The discrete-event simulator.
pub struct Simulation {
    now: Instant,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    slots: Vec<Slot>,
    net: NetworkModel,
    /// FIFO clamp per directed (from, to) pair, mirroring TCP ordering.
    last_arrival: HashMap<(u32, u32), Instant>,
    stats: SimStats,
    bounce: Option<BounceFn>,
    /// Bounded-mailbox model: a client message that would wait longer
    /// than this behind a busy actor is answered `Overloaded` instead of
    /// being requeued. Replication/control traffic is exempt.
    max_queue_delay: Option<Duration>,
}

impl Simulation {
    /// Creates a simulator over the given network model.
    pub fn new(net: NetworkModel) -> Self {
        Simulation {
            now: Instant::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            net,
            last_arrival: HashMap::new(),
            stats: SimStats::default(),
            bounce: None,
            max_queue_delay: None,
        }
    }

    /// Arms the bounded-mailbox model: client messages whose virtual
    /// queue delay would exceed `cap` are shed with an explicit
    /// `Overloaded` reply to the sender. `None` disables shedding.
    pub fn set_max_queue_delay(&mut self, cap: Option<Duration>) {
        self.max_queue_delay = cap;
    }

    /// Installs connection-refused semantics: a message to a dead actor is
    /// translated by `f` into an immediate error reply to the sender
    /// (instead of vanishing, which would leave closed-loop clients
    /// waiting out their timeouts).
    pub fn set_bounce(&mut self, f: BounceFn) {
        self.bounce = Some(f);
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Number of actor slots ever created (dead ones included); also the
    /// next address [`Self::add_actor`] will assign.
    pub fn num_actors(&self) -> usize {
        self.slots.len()
    }

    /// Adds an actor; it receives [`Event::Start`] at the current time.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> Addr {
        let addr = Addr(self.slots.len() as u32);
        self.slots.push(Slot {
            actor: Some(actor),
            busy_until: self.now,
            alive: true,
        });
        self.schedule(self.now, addr, Event::Start);
        addr
    }

    /// Marks an actor dead: pending and future events to it are dropped.
    /// Models a node crash (fail-stop).
    pub fn kill(&mut self, addr: Addr) {
        if let Some(slot) = self.slots.get_mut(addr.0 as usize) {
            slot.alive = false;
        }
    }

    /// Revives a previously killed slot with a fresh actor (a standby
    /// taking over the address). The actor receives [`Event::Start`].
    pub fn revive(&mut self, addr: Addr, actor: Box<dyn Actor>) {
        let slot = &mut self.slots[addr.0 as usize];
        slot.actor = Some(actor);
        slot.alive = true;
        slot.busy_until = self.now;
        self.schedule(self.now, addr, Event::Start);
    }

    /// Whether the actor at `addr` is alive.
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.slots
            .get(addr.0 as usize)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// Injects a message from the outside world (tests).
    pub fn inject(&mut self, from: Addr, to: Addr, msg: bespokv_proto::NetMsg) {
        self.transmit(from, to, msg, self.now);
    }

    /// Mutable access to a concrete actor (after or between runs).
    ///
    /// # Panics
    /// Panics if the address is unknown or the type does not match.
    pub fn actor_mut<T: Actor + 'static>(&mut self, addr: Addr) -> &mut T {
        self.slots[addr.0 as usize]
            .actor
            .as_mut()
            .expect("actor present")
            .as_any()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }

    fn schedule(&mut self, at: Instant, target: Addr, ev: Event) {
        self.schedule_from(at, at, target, ev);
    }

    /// Like [`Self::schedule`] but preserving the original queue-arrival
    /// time (used by busy-server requeues).
    fn schedule_from(&mut self, at: Instant, enqueued_at: Instant, target: Addr, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            target,
            ev,
            enqueued_at,
        }));
    }

    fn clamp_fifo(&mut self, from: Addr, to: Addr, arrival: Instant) -> Instant {
        let entry = self
            .last_arrival
            .entry((from.0, to.0))
            .or_insert(Instant::ZERO);
        let clamped = arrival.max(*entry);
        *entry = clamped;
        clamped
    }

    /// Puts one message on the wire no earlier than `earliest`, consulting
    /// the fault plan. Normal deliveries go through the per-link FIFO
    /// clamp; faulted copies (duplicates, reordered holds) bypass it so
    /// they can violate link ordering, which is the point. A stall plan's
    /// extra hold is applied *before* the clamp: messages queued behind a
    /// wedged arrival on the same link stay behind it, exactly like bytes
    /// backed up in a TCP stream to a node that stopped reading.
    fn transmit(&mut self, from: Addr, to: Addr, msg: bespokv_proto::NetMsg, earliest: Instant) {
        // Every transmission consumes a sequence number for its fault draw,
        // even if it is then dropped; otherwise two consecutive sends could
        // share a draw and a drop would repeat forever.
        let seq = self.seq;
        self.seq += 1;
        let is_client = matches!(
            msg,
            bespokv_proto::NetMsg::Client(_) | bespokv_proto::NetMsg::ClientResp(_)
        );
        let stall_for = |stats: &mut SimStats, net: &NetworkModel, nominal: Instant| {
            let extra = net.stall_extra(from, to, is_client, nominal, seq);
            if extra > Duration::ZERO {
                stats.stalled += 1;
            }
            extra
        };
        match self.net.fault_decision(from, to, self.now, seq) {
            FaultOutcome::Drop => {
                self.stats.faults_dropped += 1;
            }
            FaultOutcome::PartitionDrop => {
                self.stats.partition_drops += 1;
            }
            FaultOutcome::Deliver => {
                let delay = self.net.delivery_delay(from, to, msg.wire_size(), seq);
                let nominal = earliest + delay;
                let stall = stall_for(&mut self.stats, &self.net, nominal);
                let at = self.clamp_fifo(from, to, nominal + stall);
                self.schedule(at, to, Event::Msg { from, msg });
            }
            FaultOutcome::Duplicate { dup_extra } => {
                self.stats.faults_duplicated += 1;
                let delay = self.net.delivery_delay(from, to, msg.wire_size(), seq);
                let nominal = earliest + delay;
                let stall = stall_for(&mut self.stats, &self.net, nominal);
                let at = self.clamp_fifo(from, to, nominal + stall);
                self.schedule(at, to, Event::Msg { from, msg: msg.clone() });
                // The extra copy models a spurious retransmission: it does
                // not advance the FIFO clamp and may itself be overtaken.
                self.schedule(at + dup_extra, to, Event::Msg { from, msg });
            }
            FaultOutcome::Reorder { extra } => {
                self.stats.faults_reordered += 1;
                let delay = self.net.delivery_delay(from, to, msg.wire_size(), seq);
                let nominal = earliest + delay;
                let stall = stall_for(&mut self.stats, &self.net, nominal);
                // Held past its FIFO slot without updating the clamp, so
                // messages sent later on this link can arrive first.
                self.schedule(nominal + stall + extra, to, Event::Msg { from, msg });
            }
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(item)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(item.at >= self.now, "time went backwards");
        self.now = item.at;
        let idx = item.target.0 as usize;
        let Some(slot) = self.slots.get_mut(idx) else {
            self.stats.dropped += 1;
            return true;
        };
        if !slot.alive {
            if let (Some(bounce), Event::Msg { from, msg }) = (&self.bounce, &item.ev) {
                if let Some(reply) = bounce(item.target, msg) {
                    let from = *from;
                    let target = item.target;
                    self.transmit(target, from, reply, self.now);
                    self.stats.bounced += 1;
                    return true;
                }
            }
            self.stats.dropped += 1;
            return true;
        }
        // The single-core server model: if the actor is still busy with a
        // previous event, requeue this one for when it frees up. Requeued
        // events keep their relative order because seq grows monotonically.
        if slot.busy_until > self.now {
            let at = slot.busy_until;
            // Bounded mailbox: a client request whose total queue delay
            // (first arrival to earliest possible service) would exceed
            // the cap is bounced with an explicit Overloaded reply —
            // before execution, so the shed is a definitive "not applied".
            if let (Some(cap), Event::Msg { from, msg: bespokv_proto::NetMsg::Client(req) }) =
                (self.max_queue_delay, &item.ev)
            {
                if at.saturating_since(item.enqueued_at) > cap {
                    let reply = bespokv_proto::NetMsg::ClientResp(
                        bespokv_proto::client::Response::err(
                            req.id,
                            bespokv_types::KvError::Overloaded,
                        ),
                    );
                    let from = *from;
                    let target = item.target;
                    self.stats.overload_shed += 1;
                    self.transmit(target, from, reply, self.now);
                    return true;
                }
            }
            self.schedule_from(at, item.enqueued_at, item.target, item.ev);
            return true;
        }
        let is_msg = matches!(item.ev, Event::Msg { .. });
        let recv_cpu = if let Event::Msg { from, .. } = item.ev {
            self.net.endpoint_cpu(from, item.target)
        } else {
            Duration::ZERO
        };
        let mut actor = self.slots[idx].actor.take().expect("actor present");
        let mut ctx = Context::new(self.now, item.target);
        actor.on_event(item.ev, &mut ctx);
        let actions = ctx.take_actions();
        // Total busy time: handler charge + receive-side CPU + send-side
        // CPU for every outgoing message.
        let send_cpu: Duration = actions
            .iter()
            .map(|a| match a {
                Action::Send { to, .. } => self.net.endpoint_cpu(item.target, *to),
                _ => Duration::ZERO,
            })
            .sum();
        let cost = ctx.charged() + recv_cpu + send_cpu;
        let completion = self.now + cost;
        {
            let slot = &mut self.slots[idx];
            slot.actor = Some(actor);
            slot.busy_until = completion;
        }
        self.stats.events += 1;
        if is_msg {
            self.stats.messages += 1;
        }
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    self.transmit(item.target, to, msg, completion);
                }
                Action::Timer { delay, token } => {
                    self.schedule(self.now + delay, item.target, Event::Timer { token });
                }
            }
        }
        true
    }

    /// Runs until virtual time reaches `until` or the queue drains.
    pub fn run_until(&mut self, until: Instant) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, span: Duration) {
        let until = self.now + span;
        self.run_until(until);
    }

    /// Runs until no events remain (or `max_events` is hit, to bound
    /// runaway feedback loops).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> bool {
        let start = self.stats.events;
        while self.stats.events - start < max_events {
            if !self.step() {
                return true;
            }
        }
        false
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new(NetworkModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::TransportProfile;
    use bespokv_proto::{CoordMsg, NetMsg};
    use std::any::Any;

    /// Replies to every heartbeat with GetShardMap; counts receipts.
    struct Ponger {
        received: Vec<(Addr, Instant)>,
    }

    impl Actor for Ponger {
        fn on_event(&mut self, ev: Event, ctx: &mut Context) {
            if let Event::Msg { from, .. } = ev {
                self.received.push((from, ctx.now()));
                ctx.send(from, NetMsg::Coord(CoordMsg::GetShardMap));
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `count` messages to a target at Start, records replies.
    struct Pinger {
        target: Addr,
        count: usize,
        replies: Vec<Instant>,
    }

    impl Actor for Pinger {
        fn on_event(&mut self, ev: Event, ctx: &mut Context) {
            match ev {
                Event::Start => {
                    for _ in 0..self.count {
                        ctx.send(
                            self.target,
                            NetMsg::Coord(CoordMsg::Heartbeat {
                                node: bespokv_types::NodeId(0),
                                applied: 0,
                            }),
                        );
                    }
                }
                Event::Msg { .. } => self.replies.push(ctx.now()),
                _ => {}
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn quiet_net() -> NetworkModel {
        NetworkModel::uniform(TransportProfile {
            jitter_max: Duration::ZERO,
            ..TransportProfile::socket()
        })
    }

    #[test]
    fn ping_pong_roundtrip_advances_time() {
        let mut sim = Simulation::new(quiet_net());
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: ponger,
            count: 1,
            replies: vec![],
        }));
        sim.run_for(Duration::from_millis(10));
        let p = sim.actor_mut::<Pinger>(pinger);
        assert_eq!(p.replies.len(), 1);
        // A round trip must take at least two base latencies.
        assert!(p.replies[0].as_nanos() >= 2 * 25_000);
    }

    #[test]
    fn deterministic_histories() {
        let run = || {
            let mut sim = Simulation::default();
            let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
            let pinger = sim.add_actor(Box::new(Pinger {
                target: ponger,
                count: 50,
                replies: vec![],
            }));
            sim.run_for(Duration::from_millis(100));
            sim.actor_mut::<Pinger>(pinger).replies.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_per_link_preserved() {
        let mut sim = Simulation::default(); // with jitter
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: ponger,
            count: 200,
            replies: vec![],
        }));
        sim.run_for(Duration::from_millis(100));
        let p = sim.actor_mut::<Ponger>(ponger);
        assert_eq!(p.received.len(), 200);
        // Arrival times never decrease: FIFO held despite jitter.
        assert!(p.received.windows(2).all(|w| w[0].1 <= w[1].1));
        let _ = pinger;
    }

    #[test]
    fn busy_server_serializes_and_saturates() {
        /// An actor that charges 1 ms per message: capacity 1000 msg/s.
        struct Slow;
        impl Actor for Slow {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                if matches!(ev, Event::Msg { .. }) {
                    ctx.charge(Duration::from_millis(1));
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulation::new(quiet_net());
        let slow = sim.add_actor(Box::new(Slow));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: slow,
            count: 100,
            replies: vec![],
        }));
        let _ = pinger;
        sim.run_to_quiescence(100_000);
        // 100 messages x 1 ms service = at least 100 ms of virtual time.
        assert!(sim.now().as_secs_f64() >= 0.1, "{:?}", sim.now());
    }

    #[test]
    fn killed_actor_drops_messages() {
        let mut sim = Simulation::new(quiet_net());
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: ponger,
            count: 5,
            replies: vec![],
        }));
        sim.kill(ponger);
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.actor_mut::<Pinger>(pinger).replies.len(), 0);
        assert!(sim.stats().dropped >= 5);
        assert!(!sim.is_alive(ponger));
    }

    #[test]
    fn revive_installs_fresh_actor() {
        let mut sim = Simulation::new(quiet_net());
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        sim.kill(ponger);
        sim.run_for(Duration::from_millis(1));
        sim.revive(ponger, Box::new(Ponger { received: vec![] }));
        assert!(sim.is_alive(ponger));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: ponger,
            count: 3,
            replies: vec![],
        }));
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.actor_mut::<Pinger>(pinger).replies.len(), 3);
    }

    #[test]
    fn fault_plan_drops_messages_deterministically() {
        use crate::netmodel::{FaultPlan, LinkFaults};
        let run = || {
            let net = quiet_net().with_faults(
                FaultPlan::new(99).with_default(LinkFaults::drop(0.2)),
            );
            let mut sim = Simulation::new(net);
            let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
            let pinger = sim.add_actor(Box::new(Pinger {
                target: ponger,
                count: 500,
                replies: vec![],
            }));
            sim.run_to_quiescence(100_000);
            let got = sim.actor_mut::<Ponger>(ponger).received.len();
            let _ = pinger;
            (got, sim.stats())
        };
        let (got1, stats1) = run();
        let (got2, stats2) = run();
        assert_eq!(got1, got2);
        assert_eq!(stats1, stats2, "same seed must replay the same schedule");
        assert!(stats1.faults_dropped > 0);
        // Roughly 20% of the 500 pings (plus some replies) dropped.
        assert!(got1 < 500 && got1 > 300, "delivered = {got1}");
    }

    #[test]
    fn fault_plan_duplicates_deliver_extra_copies() {
        use crate::netmodel::{FaultPlan, LinkFaults};
        let net = quiet_net().with_faults(FaultPlan::new(7).with_default(LinkFaults {
            dup_p: 1.0,
            ..LinkFaults::NONE
        }));
        let mut sim = Simulation::new(net);
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        sim.inject(
            Addr(9),
            ponger,
            NetMsg::Coord(CoordMsg::GetShardMap),
        );
        sim.run_to_quiescence(10_000);
        // The injected message and the ponger's two replies all duplicate.
        assert_eq!(sim.stats().faults_duplicated, 3);
        assert_eq!(sim.actor_mut::<Ponger>(ponger).received.len(), 2);
    }

    #[test]
    fn reordered_messages_bypass_fifo_clamp() {
        use crate::netmodel::{FaultPlan, LinkFaults};
        // Reorder every message with a large hold window; with many
        // back-to-back sends some must arrive out of order.
        let net = quiet_net().with_faults(FaultPlan::new(3).with_default(LinkFaults {
            reorder_p: 0.5,
            reorder_delay_max: Duration::from_millis(5),
            ..LinkFaults::NONE
        }));
        let mut sim = Simulation::new(net);
        let sink = sim.add_actor(Box::new(Ponger { received: vec![] }));
        for i in 0..50 {
            sim.inject(
                Addr(9),
                sink,
                NetMsg::Coord(CoordMsg::Heartbeat {
                    node: bespokv_types::NodeId(i),
                    applied: i as u64,
                }),
            );
        }
        sim.run_to_quiescence(100_000);
        assert!(sim.stats().faults_reordered > 0);
        assert_eq!(sim.actor_mut::<Ponger>(sink).received.len(), 50);
    }

    #[test]
    fn partition_cuts_and_heals() {
        use crate::netmodel::FaultPlan;
        let heal = Instant::ZERO + Duration::from_millis(50);
        let net = quiet_net().with_faults(FaultPlan::new(0).with_symmetric_partition(
            vec![Addr(1)],
            vec![Addr(0)],
            Instant::ZERO,
            heal,
        ));
        let mut sim = Simulation::new(net);
        let ponger = sim.add_actor(Box::new(Ponger { received: vec![] }));
        let pinger = sim.add_actor(Box::new(Pinger {
            target: ponger,
            count: 5,
            replies: vec![],
        }));
        sim.run_for(Duration::from_millis(40));
        assert_eq!(sim.actor_mut::<Ponger>(ponger).received.len(), 0);
        assert_eq!(sim.stats().partition_drops, 5);
        // After heal, traffic flows again.
        sim.run_until(heal);
        sim.inject(pinger, ponger, NetMsg::Coord(CoordMsg::GetShardMap));
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.actor_mut::<Ponger>(ponger).received.len(), 1);
    }

    #[test]
    fn bounded_queue_delay_sheds_client_messages() {
        use bespokv_proto::client::{Op, Request, RespBody, Response};
        use bespokv_types::{ClientId, Key, KvError, RequestId};

        /// Charges 10 ms per client request, then replies Done.
        struct SlowServer;
        impl Actor for SlowServer {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                if let Event::Msg { from, msg: NetMsg::Client(req) } = ev {
                    ctx.charge(Duration::from_millis(10));
                    ctx.send(from, NetMsg::ClientResp(Response::ok(req.id, RespBody::Done)));
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        /// Collects every client response it receives.
        struct RespSink {
            results: Vec<Result<RespBody, KvError>>,
        }
        impl Actor for RespSink {
            fn on_event(&mut self, ev: Event, _ctx: &mut Context) {
                if let Event::Msg { msg: NetMsg::ClientResp(r), .. } = ev {
                    self.results.push(r.result);
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }

        let run = || {
            let mut sim = Simulation::new(quiet_net());
            sim.set_max_queue_delay(Some(Duration::from_millis(5)));
            let server = sim.add_actor(Box::new(SlowServer));
            let sink = sim.add_actor(Box::new(RespSink { results: vec![] }));
            for i in 0..10u32 {
                let req = Request::new(
                    RequestId::compose(ClientId(7), i),
                    Op::Get { key: Key::from("k") },
                );
                sim.inject(sink, server, NetMsg::Client(req));
            }
            sim.run_to_quiescence(100_000);
            let results = sim.actor_mut::<RespSink>(sink).results.clone();
            (results, sim.stats())
        };
        let (results, stats) = run();
        // Every request was answered: served or explicitly shed, no
        // silent drops.
        assert_eq!(results.len(), 10);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(KvError::Overloaded)))
            .count();
        assert_eq!(ok + shed, 10);
        // 10 ms service vs a 5 ms queue bound: only the head of the queue
        // can be served; the pile-up behind it must shed.
        assert!(ok >= 1 && shed >= 5, "ok={ok} shed={shed}");
        assert_eq!(stats.overload_shed, shed as u64);
        // Shedding must not break determinism.
        let (results2, stats2) = run();
        assert_eq!(results, results2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn stall_plan_wedges_and_releases_deterministically() {
        use crate::netmodel::StallPlan;
        use bespokv_proto::client::{Op, Request, RespBody, Response};
        use bespokv_types::{ClientId, Key, RequestId};

        /// Replies Done immediately to every client request.
        struct Echo;
        impl Actor for Echo {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                if let Event::Msg { from, msg: NetMsg::Client(req) } = ev {
                    ctx.send(from, NetMsg::ClientResp(Response::ok(req.id, RespBody::Done)));
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct RespSink {
            got: usize,
        }
        impl Actor for RespSink {
            fn on_event(&mut self, ev: Event, _ctx: &mut Context) {
                if let Event::Msg { msg: NetMsg::ClientResp(_), .. } = ev {
                    self.got += 1;
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }

        let wedge_from = Instant::ZERO;
        let wedge_until = Instant::ZERO + Duration::from_millis(50);
        let run = || {
            let net = quiet_net().with_stalls(
                StallPlan::new(42).with_wedge(Addr(0), wedge_from, wedge_until),
            );
            let mut sim = Simulation::new(net);
            let server = sim.add_actor(Box::new(Echo));
            let sink = sim.add_actor(Box::new(RespSink { got: 0 }));
            for i in 0..5u32 {
                let req = Request::new(
                    RequestId::compose(ClientId(1), i),
                    Op::Get { key: Key::from("k") },
                );
                sim.inject(sink, server, NetMsg::Client(req));
            }
            // Mid-window the wedged server has received nothing.
            sim.run_until(Instant::ZERO + Duration::from_millis(40));
            let mid_events = sim.stats().messages;
            sim.run_to_quiescence(100_000);
            let got = sim.actor_mut::<RespSink>(sink).got;
            (mid_events, got, sim.stats(), sim.now())
        };
        let (mid, got, stats, end) = run();
        assert_eq!(mid, 0, "wedged node must not drain its inbox mid-window");
        assert_eq!(stats.stalled, 5);
        // All five served after release: 5 requests + 5 replies delivered.
        assert_eq!(got, 5);
        assert_eq!(stats.messages, 10);
        assert!(end >= wedge_until);
        let again = run();
        assert_eq!((mid, got, stats, end), again, "same seed replays the stall");
    }

    #[test]
    fn timers_fire_at_requested_time() {
        struct TimerUser {
            fired: Vec<Instant>,
        }
        impl Actor for TimerUser {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                match ev {
                    Event::Start => ctx.set_timer(Duration::from_millis(5), 1),
                    Event::Timer { token: 1 } => {
                        self.fired.push(ctx.now());
                        if self.fired.len() < 3 {
                            ctx.set_timer(Duration::from_millis(5), 1);
                        }
                    }
                    _ => {}
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulation::new(quiet_net());
        let t = sim.add_actor(Box::new(TimerUser { fired: vec![] }));
        sim.run_for(Duration::from_millis(100));
        let fired = &sim.actor_mut::<TimerUser>(t).fired;
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], Instant::ZERO + Duration::from_millis(5));
        assert_eq!(fired[2], Instant::ZERO + Duration::from_millis(15));
    }
}
