//! Real TCP transport for the client edge.
//!
//! The simulator and the live runtime move messages in-process; this module
//! is the genuine network path: a thread-per-connection TCP server that
//! speaks any [`ProtocolParser`] (binary, RESP, or SSDB), and a blocking
//! client. The quickstart example serves a store over it, and the
//! socket-vs-kernel-bypass benchmark (paper section E) measures it against
//! the in-process fast path.

use bespokv_proto::client::{Request, Response};
use bespokv_proto::parser::ProtocolParser;
use bespokv_types::{KvError, KvResult};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Produces a fresh parser per connection.
pub type ParserFactory = dyn Fn() -> Box<dyn ProtocolParser> + Send + Sync;

/// Handles one request, producing the response. Shared across connections.
pub type Handler = dyn Fn(Request) -> Response + Send + Sync;

/// A thread-per-connection TCP server.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<Handler>,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("bespokv-accept".into())
            .spawn(move || {
                // A short accept timeout lets the loop observe `stop`.
                listener
                    .set_nonblocking(true)
                    .expect("set_nonblocking on listener");
                let mut conn_threads = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let parser = make_parser();
                            let handler = Arc::clone(&handler);
                            let stop3 = Arc::clone(&stop2);
                            conn_threads.push(
                                std::thread::Builder::new()
                                    .name("bespokv-conn".into())
                                    .spawn(move || {
                                        let _ = serve_connection(stream, parser, handler, stop3);
                                    })
                                    .expect("spawn connection thread"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })?;
        Ok(TcpServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and waits for the accept loop to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    mut parser: Box<dyn ProtocolParser>,
    handler: Arc<Handler>,
    stop: Arc<AtomicBool>,
) -> KvResult<()> {
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .map_err(KvError::from)?;
    stream.set_nodelay(true).map_err(KvError::from)?;
    let mut buf = [0u8; 16 * 1024];
    let mut out = BytesMut::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                parser.feed(&buf[..n]);
                out.clear();
                loop {
                    match parser.next_request() {
                        Ok(Some(req)) => {
                            let resp = handler(req);
                            parser.encode_response(&resp, &mut out);
                        }
                        Ok(None) => break,
                        Err(_) => return Ok(()), // protocol error: drop conn
                    }
                }
                if !out.is_empty() {
                    stream.write_all(&out)?;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return Ok(()),
        }
    }
}

/// A blocking TCP client speaking any [`ProtocolParser`].
pub struct TcpClient {
    stream: TcpStream,
    parser: Box<dyn ProtocolParser>,
    scratch: BytesMut,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    pub fn connect(addr: SocketAddr, parser: Box<dyn ProtocolParser>) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            parser,
            scratch: BytesMut::new(),
        })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, req: &Request) -> KvResult<Response> {
        self.scratch.clear();
        self.parser.encode_request(req, &mut self.scratch);
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(resp) = self.parser.next_response()? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                return Err(KvError::Io("connection closed mid-response".into()));
            }
            self.parser.feed(&buf[..n]);
        }
    }

    /// Sends a batch of pipelined requests, then collects all responses.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> KvResult<Vec<Response>> {
        self.scratch.clear();
        for r in reqs {
            self.parser.encode_request(r, &mut self.scratch);
        }
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut out = Vec::with_capacity(reqs.len());
        let mut buf = [0u8; 16 * 1024];
        while out.len() < reqs.len() {
            while let Some(resp) = self.parser.next_response()? {
                out.push(resp);
                if out.len() == reqs.len() {
                    return Ok(out);
                }
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                return Err(KvError::Io("connection closed mid-batch".into()));
            }
            self.parser.feed(&buf[..n]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_proto::client::{Op, RespBody};
    use bespokv_proto::parser::BinaryParser;
    use bespokv_proto::text::RespParser;
    use bespokv_types::{ClientId, Key, RequestId, Value, VersionedValue};
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn kv_handler() -> Arc<Handler> {
        let store: Mutex<HashMap<Key, Value>> = Mutex::new(HashMap::new());
        Arc::new(move |req: Request| {
            let result = match &req.op {
                Op::Put { key, value } => {
                    store.lock().insert(key.clone(), value.clone());
                    Ok(RespBody::Done)
                }
                Op::Get { key } => store
                    .lock()
                    .get(key)
                    .cloned()
                    .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                    .ok_or(KvError::NotFound),
                _ => Err(KvError::Rejected("unsupported".into())),
            };
            Response {
                id: req.id,
                result,
            }
        })
    }

    fn rid(seq: u32) -> RequestId {
        RequestId::compose(ClientId(1), seq)
    }

    #[test]
    fn binary_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        assert_eq!(client.call(&put).unwrap().result, Ok(RespBody::Done));
        let get = Request::new(rid(1), Op::Get { key: Key::from("k") });
        let resp = client.call(&get).unwrap();
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("v"), 1)))
        );
        server.stop();
    }

    #[test]
    fn resp_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(RespParser::new(ClientId(0))) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        // Talk raw RESP like a redis-cli would.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n")
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        while got.len() < b"+OK\r\n$1\r\n1\r\n".len() {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(&got[..], b"+OK\r\n$1\r\n1\r\n");
        server.stop();
    }

    #[test]
    fn pipelined_batch_roundtrip() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                Request::new(
                    rid(i),
                    Op::Put {
                        key: Key::from(format!("k{i}")),
                        value: Value::from(format!("v{i}")),
                    },
                )
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), 32);
        assert!(resps.iter().all(|r| r.result == Ok(RespBody::Done)));
        server.stop();
    }

    #[test]
    fn concurrent_connections() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c =
                        TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                    for i in 0..50u32 {
                        let r = Request::new(
                            RequestId::compose(ClientId(t), i),
                            Op::Put {
                                key: Key::from(format!("t{t}-{i}")),
                                value: Value::from("x"),
                            },
                        );
                        assert_eq!(c.call(&r).unwrap().result, Ok(RespBody::Done));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }
}
