//! Real TCP transport for the client edge.
//!
//! The simulator and the live runtime move messages in-process; this module
//! is the genuine network path. Two transports implement the same
//! [`EdgeTransport`] seam (the paper's "transport profile" — section III-B
//! and the kernel-bypass discussion in section E):
//!
//! * **blocking** — a thread-per-connection server with an optional worker
//!   pool. Simple, great for dozens of pipelined clients, wrong for tens of
//!   thousands of mostly-idle connections (a thread + two fds each).
//! * **reactor** — a nonblocking epoll readiness loop ([`crate::reactor`]):
//!   N per-core reactor threads, a slab of connection states each, one fd
//!   per connection, edge-triggered reads feeding the same incremental
//!   [`ProtocolParser`]s, coalesced response flushes.
//!
//! [`TcpServer::bind_with`] picks the transport from
//! [`ServerOptions::transport`]; `None` defers to the `BESPOKV_EDGE`
//! environment variable (`reactor` or `blocking`, default blocking), which
//! is how CI runs the whole suite on either edge. A future busy-poll /
//! DPDK profile drops in behind the same trait.

use bespokv_proto::client::{Request, Response};
use bespokv_proto::parser::ProtocolParser;
use bespokv_types::{KvError, KvResult, RequestId, ShardId};
use bytes::BytesMut;
use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Produces a fresh parser per connection.
pub type ParserFactory = dyn Fn() -> Box<dyn ProtocolParser> + Send + Sync;

/// Handles one request, producing the response. Shared across connections.
pub type Handler = dyn Fn(Request) -> Response + Send + Sync;

/// What a [`DeferHandler`] did with one request.
pub enum Served {
    /// The response is ready now; the transport encodes it immediately.
    Ready(Response),
    /// The handler took a [`Completer`] and will finish the request from
    /// another thread. The transport parks the *connection slot* — never a
    /// reactor thread — until the completer fires (or is dropped).
    Parked,
}

/// A handler that may answer inline (`Served::Ready`) or take a
/// [`Completer`] from [`Defer::completer`] and park the request
/// (`Served::Parked`). This is how the relay edge returns a reactor turn
/// immediately while a controlet reply — or the relay deadline — completes
/// the request later from the demux thread.
pub type DeferHandler = dyn Fn(Request, Defer<'_>) -> Served + Send + Sync;

/// Lazily mints the [`Completer`] for one request. Handlers that answer
/// inline never touch it, so the fast path allocates nothing; calling
/// [`Defer::completer`] commits the connection slot to wait for an
/// asynchronous completion.
pub struct Defer<'a> {
    make: &'a mut dyn FnMut() -> Completer,
}

impl Defer<'_> {
    /// Takes the completion handle for this request. The handler must then
    /// return [`Served::Parked`]; completing happens from any thread.
    pub fn completer(&mut self) -> Completer {
        (self.make)()
    }
}

/// Once-only completion handle for a parked request.
///
/// Dropping an uncompleted `Completer` delivers a stamped
/// [`KvError::Timeout`] response, so a lost handle can wedge neither a
/// connection slot nor the client waiting on it.
pub struct Completer {
    rid: RequestId,
    sink: Option<Box<dyn FnOnce(Response) + Send>>,
}

impl Completer {
    /// Wraps a transport-provided delivery sink. `rid` stamps the backstop
    /// `Timeout` response if the handle is dropped uncompleted.
    pub fn new(rid: RequestId, sink: impl FnOnce(Response) + Send + 'static) -> Completer {
        Completer {
            rid,
            sink: Some(Box::new(sink)),
        }
    }

    /// The id of the request this handle completes.
    pub fn rid(&self) -> RequestId {
        self.rid
    }

    /// Delivers the response to the parked connection slot.
    pub fn complete(mut self, resp: Response) {
        if let Some(sink) = self.sink.take() {
            sink(resp);
        }
    }

    /// Completes with an error stamped with the parked request's id.
    pub fn fail(self, err: KvError) {
        let rid = self.rid;
        self.complete(Response::err(rid, err));
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink(Response::err(self.rid, KvError::Timeout));
        }
    }
}

impl std::fmt::Debug for Completer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer")
            .field("rid", &self.rid)
            .field("completed", &self.sink.is_none())
            .finish()
    }
}

/// Internal union of the two handler shapes, threaded through both
/// transports so plain handlers pay nothing for the deferred seam.
#[derive(Clone)]
pub(crate) enum AnyHandler {
    Plain(Arc<Handler>),
    Defer(Arc<DeferHandler>),
}

impl AnyHandler {
    /// Runs the handler, minting completers through `make` on demand.
    pub(crate) fn call(&self, req: Request, make: &mut dyn FnMut() -> Completer) -> Served {
        match self {
            AnyHandler::Plain(h) => Served::Ready(h(req)),
            AnyHandler::Defer(h) => h(req, Defer { make }),
        }
    }

    /// Serves one request to completion on the calling thread. A parked
    /// request blocks *this thread only* (thread-per-connection semantics)
    /// on a lazily-created channel; the completer's drop backstop
    /// guarantees the wait ends.
    pub(crate) fn call_blocking(&self, req: Request) -> Response {
        let id = req.id;
        let mut rx_slot: Option<mpsc::Receiver<Response>> = None;
        let served = self.call(req, &mut || {
            let (tx, rx) = mpsc::channel();
            rx_slot = Some(rx);
            Completer::new(id, move |resp| {
                let _ = tx.send(resp);
            })
        });
        match (served, rx_slot) {
            (Served::Ready(resp), _) => resp,
            (Served::Parked, Some(rx)) => rx
                .recv()
                .unwrap_or_else(|_| Response::err(id, KvError::Timeout)),
            // Parked without taking a completer: nothing will ever answer;
            // synthesize the failure instead of wedging the connection.
            (Served::Parked, None) => Response::err(id, KvError::Timeout),
        }
    }
}

impl From<Arc<Handler>> for AnyHandler {
    fn from(h: Arc<Handler>) -> Self {
        AnyHandler::Plain(h)
    }
}

impl From<Arc<DeferHandler>> for AnyHandler {
    fn from(h: Arc<DeferHandler>) -> Self {
        AnyHandler::Defer(h)
    }
}

/// Which server transport backs a [`TcpServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Thread-per-connection with blocking I/O (plus optional worker pool).
    Blocking,
    /// Nonblocking epoll reactor threads (see [`crate::reactor`]).
    Reactor,
}

impl TransportKind {
    /// Reads the deployment-wide default from `BESPOKV_EDGE`
    /// (`reactor` selects the reactor, anything else the blocking edge).
    pub fn from_env() -> TransportKind {
        match std::env::var("BESPOKV_EDGE").as_deref() {
            Ok("reactor") => TransportKind::Reactor,
            _ => TransportKind::Blocking,
        }
    }
}

/// Tuning knobs for [`TcpServer::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// When `Some(n)`, request handling on the **blocking** transport runs
    /// on a bounded pool of `n` workers instead of inline on the
    /// connection thread. Per-connection response order is preserved; the
    /// bounded queue applies backpressure when all workers are busy (or
    /// sheds, see `pipeline_cap`). The reactor transport ignores this:
    /// its reactor threads *are* the workers.
    pub worker_threads: Option<usize>,
    /// Concurrent connections beyond this are refused. The blocking edge
    /// drops the stream at accept time; the reactor bounds its connection
    /// slab and answers the refused connection's first request batch with
    /// an explicit [`KvError::Overloaded`] before closing (never a silent
    /// SYN-backlog stall). `None` means unbounded.
    pub max_connections: Option<usize>,
    /// Blocking edge: at most `n` requests from one socket read are
    /// dispatched; the rest of the batch is answered
    /// [`KvError::Overloaded`] in arrival order (and a full worker-pool
    /// queue sheds instead of blocking). Reactor: re-expressed as
    /// backpressure — at most `n` requests are decoded and served per
    /// connection per reactor turn, further input stays in the socket
    /// buffer until the pipeline drains (TCP pushes back; nothing is
    /// shed mid-stream).
    pub pipeline_cap: Option<usize>,
    /// Which transport serves this listener; `None` defers to the
    /// `BESPOKV_EDGE` environment variable (default blocking).
    pub transport: Option<TransportKind>,
    /// Reactor transport: number of reactor threads (each owning an
    /// acceptor and a slab of connections). `None` sizes to the machine
    /// (`min(cores, 4)`).
    pub reactor_threads: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            worker_threads: None,
            // Generous, but bounded: the accept loop must never be a
            // thread-spawn amplifier for a SYN-and-hold flood.
            max_connections: Some(1024),
            pipeline_cap: None,
            transport: None,
            reactor_threads: None,
        }
    }
}

/// Counters exported by a running [`TcpServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpServerStats {
    /// Connections accepted since bind.
    pub connections_accepted: u64,
    /// Connections dropped because the peer sent a malformed stream.
    pub protocol_error_drops: u64,
    /// Connections refused at the `max_connections` cap.
    pub connections_refused: u64,
    /// Requests answered `Overloaded` at the per-connection pipeline cap.
    pub pipeline_shed: u64,
    /// Requests answered `Overloaded` at a full worker-pool queue.
    pub pool_shed: u64,
    /// Connections closed because the OS refused to spawn their handler
    /// thread (blocking edge under thread exhaustion).
    pub spawn_failures: u64,
}

/// Shared atomic counters behind [`TcpServerStats`]; one set per server,
/// written by whichever transport backs it.
#[derive(Debug, Default)]
pub(crate) struct EdgeCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) pipeline_shed: AtomicU64,
    pub(crate) pool_shed: AtomicU64,
    pub(crate) spawn_failures: AtomicU64,
}

impl EdgeCounters {
    pub(crate) fn snapshot(&self) -> TcpServerStats {
        TcpServerStats {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            protocol_error_drops: self.protocol_errors.load(Ordering::Relaxed),
            connections_refused: self.refused.load(Ordering::Relaxed),
            pipeline_shed: self.pipeline_shed.load(Ordering::Relaxed),
            pool_shed: self.pool_shed.load(Ordering::Relaxed),
            spawn_failures: self.spawn_failures.load(Ordering::Relaxed),
        }
    }
}

/// The transport-profile seam: what a server backend owes the
/// [`TcpServer`] facade. Today's implementations are the blocking
/// thread-per-connection edge and the epoll reactor; a kernel-bypass /
/// busy-poll profile (paper section E) would implement the same trait.
pub trait EdgeTransport: Send {
    /// Stops accepting, closes live connections, and joins every
    /// transport-owned thread. Must be idempotent.
    fn shutdown(&mut self);

    /// Test hook: make the next `n` connection-thread spawns fail, to
    /// exercise thread-exhaustion handling without exhausting the OS.
    #[cfg(test)]
    fn inject_spawn_failures(&self, _n: u64) {}
}

/// A TCP server speaking any [`ProtocolParser`], backed by a pluggable
/// [`EdgeTransport`].
pub struct TcpServer {
    local_addr: SocketAddr,
    kind: TransportKind,
    counters: Arc<EdgeCounters>,
    inner: Option<Box<dyn EdgeTransport>>,
}

impl TcpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"`) and starts accepting, with
    /// inline request handling and the environment-selected transport.
    pub fn bind(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<Handler>,
    ) -> std::io::Result<TcpServer> {
        Self::bind_with(addr, make_parser, handler, ServerOptions::default())
    }

    /// Binds with explicit [`ServerOptions`].
    pub fn bind_with(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<Handler>,
        options: ServerOptions,
    ) -> std::io::Result<TcpServer> {
        Self::bind_any(addr, make_parser, AnyHandler::Plain(handler), options)
    }

    /// Binds with a deferred-completion handler: requests the handler
    /// parks are completed later through their [`Completer`] without
    /// holding a server thread (see [`DeferHandler`]).
    pub fn bind_deferred(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<DeferHandler>,
        options: ServerOptions,
    ) -> std::io::Result<TcpServer> {
        Self::bind_any(addr, make_parser, AnyHandler::Defer(handler), options)
    }

    fn bind_any(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: AnyHandler,
        options: ServerOptions,
    ) -> std::io::Result<TcpServer> {
        let counters = Arc::new(EdgeCounters::default());
        let mut kind = options.transport.unwrap_or_else(TransportKind::from_env);
        if kind == TransportKind::Reactor && !cfg!(target_os = "linux") {
            // The vendored poll shim is epoll-only; elsewhere the blocking
            // edge serves the same API (the transport seam is exactly for
            // this kind of per-platform substitution).
            kind = TransportKind::Blocking;
        }
        let (inner, local_addr): (Box<dyn EdgeTransport>, SocketAddr) = match kind {
            TransportKind::Blocking => {
                let edge = BlockingEdge::bind(
                    addr,
                    make_parser,
                    handler,
                    &options,
                    Arc::clone(&counters),
                )?;
                let local = edge.local_addr;
                (Box::new(edge), local)
            }
            #[cfg(target_os = "linux")]
            TransportKind::Reactor => {
                let edge = crate::reactor::ReactorEdge::bind(
                    addr,
                    make_parser,
                    handler,
                    &options,
                    Arc::clone(&counters),
                )?;
                let local = edge.local_addr();
                (Box::new(edge), local)
            }
            #[cfg(not(target_os = "linux"))]
            TransportKind::Reactor => unreachable!("reactor demoted to blocking above"),
        };
        Ok(TcpServer {
            local_addr,
            kind,
            counters,
            inner: Some(inner),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which transport ended up serving this listener (after environment
    /// and platform resolution).
    pub fn transport_kind(&self) -> TransportKind {
        self.kind
    }

    /// Current server counters.
    pub fn stats(&self) -> TcpServerStats {
        self.counters.snapshot()
    }

    /// Stops accepting, closes live connections, and waits for all server
    /// threads to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(mut t) = self.inner.take() {
            t.shutdown();
        }
    }

    /// Test hook: force the next `n` connection-thread spawns to fail.
    #[cfg(test)]
    fn inject_spawn_failures(&self, n: u64) {
        if let Some(t) = &self.inner {
            t.inject_spawn_failures(n);
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// State shared between the accept loop, connection threads, and the handle.
struct Shared {
    stop: AtomicBool,
    /// Clones of live connection streams, used to unblock reads on stop.
    conns: Mutex<HashMap<u64, TcpStream>>,
    counters: Arc<EdgeCounters>,
    pipeline_cap: Option<usize>,
    pool: Option<WorkerPool>,
    /// Test-only: pending injected spawn failures.
    #[cfg(test)]
    fail_spawns: AtomicU64,
}

impl Shared {
    /// Whether this accept should pretend `thread::spawn` failed.
    fn take_injected_spawn_failure(&self) -> bool {
        #[cfg(test)]
        {
            self.fail_spawns
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok()
        }
        #[cfg(not(test))]
        {
            false
        }
    }
}

/// The thread-per-connection transport with blocking I/O.
///
/// No polling anywhere: the accept loop blocks in `accept()` and is woken
/// for shutdown by a self-connection; connection threads block in `read()`
/// and are woken by `shutdown()` on a registered clone of their stream.
struct BlockingEdge {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl BlockingEdge {
    fn bind(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: AnyHandler,
        options: &ServerOptions,
        counters: Arc<EdgeCounters>,
    ) -> std::io::Result<BlockingEdge> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            counters,
            pipeline_cap: options.pipeline_cap,
            pool: options
                .worker_threads
                .map(|n| WorkerPool::new(n, handler.clone())),
            #[cfg(test)]
            fail_spawns: AtomicU64::new(0),
        });
        let max_connections = options.max_connections;
        let shared2 = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("bespokv-accept".into())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                let mut next_id = 0u64;
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if shared2.stop.load(Ordering::Acquire) {
                                break; // the wake connection from stop()
                            }
                            // Reap threads of connections that already hung
                            // up, so a long-lived server accepting many
                            // short-lived connections doesn't grow this Vec
                            // without bound.
                            conn_threads.retain(|t: &JoinHandle<()>| !t.is_finished());
                            // The registry holds exactly the live
                            // connections (each thread deregisters itself on
                            // exit), so its size is the concurrency to cap.
                            if let Some(cap) = max_connections {
                                if shared2.conns.lock().len() >= cap {
                                    shared2.counters.refused.fetch_add(1, Ordering::Relaxed);
                                    drop(stream);
                                    continue;
                                }
                            }
                            let id = next_id;
                            next_id += 1;
                            if let Ok(clone) = stream.try_clone() {
                                shared2.conns.lock().insert(id, clone);
                            }
                            let parser = make_parser();
                            let handler = handler.clone();
                            let shared3 = Arc::clone(&shared2);
                            let spawned = if shared2.take_injected_spawn_failure() {
                                Err(std::io::Error::other("injected spawn failure"))
                            } else {
                                std::thread::Builder::new().name("bespokv-conn".into()).spawn(
                                    move || {
                                        let _ =
                                            serve_connection(stream, parser, handler, &shared3);
                                        shared3.conns.lock().remove(&id);
                                    },
                                )
                            };
                            match spawned {
                                Ok(t) => {
                                    shared2.counters.accepted.fetch_add(1, Ordering::Relaxed);
                                    conn_threads.push(t);
                                }
                                // Thread exhaustion (a connection flood is
                                // the usual cause) must cost one connection,
                                // not the whole listener: close the socket,
                                // count it, keep accepting. The stream moved
                                // into the dropped closure is already closed;
                                // the registered clone still needs removing.
                                Err(_) => {
                                    if let Some(clone) = shared2.conns.lock().remove(&id) {
                                        let _ = clone.shutdown(Shutdown::Both);
                                    }
                                    shared2
                                        .counters
                                        .spawn_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            if shared2.stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
                // Unblock any connection registered after stop() drained the
                // registry, then wait for all of them.
                for (_, s) in shared2.conns.lock().drain() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                for t in conn_threads {
                    let _ = t.join();
                }
                // Drain-then-close: only after every connection thread has
                // exited (no submitter can race the teardown) is the worker
                // pool closed, and close itself drains accepted jobs before
                // joining the workers.
                if let Some(pool) = &shared2.pool {
                    pool.shutdown();
                }
            })?;
        Ok(BlockingEdge {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

impl EdgeTransport for BlockingEdge {
    fn shutdown(&mut self) {
        if !self.shared.stop.swap(true, Ordering::AcqRel) {
            // Wake the blocking accept() with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            // Wake blocking reads by closing both directions of every
            // registered connection.
            for (_, s) in self.shared.conns.lock().drain() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    #[cfg(test)]
    fn inject_spawn_failures(&self, n: u64) {
        self.shared.fail_spawns.fetch_add(n, Ordering::AcqRel);
    }
}

impl Drop for BlockingEdge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    mut parser: Box<dyn ProtocolParser>,
    handler: AnyHandler,
    shared: &Shared,
) -> KvResult<()> {
    stream.set_nodelay(true).map_err(KvError::from)?;
    let mut buf = [0u8; 16 * 1024];
    // Persistent per-connection response buffer: every response in a read
    // batch is encoded into it and flushed with a single write.
    let mut out = BytesMut::with_capacity(16 * 1024);
    let mut pending: VecDeque<mpsc::Receiver<Response>> = VecDeque::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Includes the error a stop()-initiated shutdown() produces.
            Err(_) => return Ok(()),
        };
        parser.feed(&buf[..n]);
        out.clear();
        // Requests dispatched from this socket read; beyond the pipeline
        // cap the rest of the batch is shed, in order, with an explicit
        // Overloaded reply — never a silent drop.
        let mut batch_n = 0usize;
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    batch_n += 1;
                    let shed = shared.pipeline_cap.is_some_and(|cap| batch_n > cap);
                    match &shared.pool {
                        None => {
                            let resp = if shed {
                                shared.counters.pipeline_shed.fetch_add(1, Ordering::Relaxed);
                                Response::err(req.id, KvError::Overloaded)
                            } else {
                                // A deferred handler that parks blocks only
                                // this connection's own thread.
                                handler.call_blocking(req)
                            };
                            parser.encode_response(&resp, &mut out);
                        }
                        Some(pool) => {
                            // Fan the request out to the pool; the FIFO of
                            // receivers preserves response order. Workers own
                            // their handler clone, so nothing is cloned here
                            // per request. Shed responses ride the same FIFO
                            // as a pre-resolved channel, so order holds.
                            let id = req.id;
                            let (tx, rx) = mpsc::channel();
                            if shed {
                                shared.counters.pipeline_shed.fetch_add(1, Ordering::Relaxed);
                                let _ = tx.send(Response::err(id, KvError::Overloaded));
                                pending.push_back(rx);
                            } else {
                                let job: Job = Box::new(move |h| {
                                    let mut minted = false;
                                    let served = h.call(req, &mut || {
                                        minted = true;
                                        let tx = tx.clone();
                                        Completer::new(id, move |resp| {
                                            let _ = tx.send(resp);
                                        })
                                    });
                                    match served {
                                        Served::Ready(resp) => {
                                            let _ = tx.send(resp);
                                        }
                                        // The completer holds a sender for
                                        // this request's FIFO slot: the demux
                                        // thread (or the drop backstop)
                                        // answers through it while the worker
                                        // moves on immediately.
                                        Served::Parked if minted => {}
                                        Served::Parked => {
                                            let _ =
                                                tx.send(Response::err(id, KvError::Timeout));
                                        }
                                    }
                                });
                                // With a pipeline cap set, a full pool queue
                                // sheds instead of blocking the connection
                                // thread; uncapped servers keep the original
                                // backpressure behaviour. A pool already
                                // closed for shutdown sheds the same way —
                                // the socket is about to be closed anyway.
                                let submitted = if shared.pipeline_cap.is_some() {
                                    pool.try_submit(job)
                                } else {
                                    pool.submit(job)
                                };
                                match submitted {
                                    Ok(()) => pending.push_back(rx),
                                    Err(()) => {
                                        shared.counters.pool_shed.fetch_add(1, Ordering::Relaxed);
                                        let (tx2, rx2) = mpsc::channel();
                                        let _ =
                                            tx2.send(Response::err(id, KvError::Overloaded));
                                        pending.push_back(rx2);
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Malformed stream: count it and drop the connection.
                    shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
        while let Some(rx) = pending.pop_front() {
            let resp = rx
                .recv()
                .map_err(|_| KvError::Io("worker pool dropped a request".into()))?;
            parser.encode_response(&resp, &mut out);
        }
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
    }
}

type Job = Box<dyn FnOnce(&AnyHandler) + Send>;

/// A fixed-size pool of worker threads fed by a bounded queue. Each worker
/// owns its own clone of the request handler, so submitting a job costs no
/// per-request `Arc` traffic on the connection thread.
///
/// Shutdown is **drain-then-close**: [`WorkerPool::shutdown`] disconnects
/// the queue and joins the workers, who finish every job accepted before
/// the disconnect (the channel hands out queued items before reporting
/// disconnection). Submissions racing the close fail cleanly with `Err`
/// instead of vanishing, so a caller can always answer the request
/// (`Overloaded`) rather than leaving its connection waiting forever.
struct WorkerPool {
    tx: RwLock<Option<channel::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    fn new(n: usize, handler: AnyHandler) -> Self {
        let n = n.max(1);
        let (tx, rx) = channel::bounded::<Job>(n * 64);
        let workers = (0..n)
            .map(|i| {
                let rx = rx.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("bespokv-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking handler must cost one request, not
                            // one worker: the connection waiting on the job's
                            // dropped sender sees an error and is dropped,
                            // but pool capacity is preserved.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job(&handler)
                            }));
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: RwLock::new(Some(tx)),
            workers: Mutex::new(workers),
        }
    }

    /// Blocking submit; `Err` only once the pool is closed for shutdown.
    fn submit(&self, job: Job) -> Result<(), ()> {
        match &*self.tx.read() {
            Some(tx) => tx.send(job).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Non-blocking submit: `Err` (job dropped) when the queue is full or
    /// the pool is closed, so the caller can shed with an explicit reply
    /// instead of stalling.
    fn try_submit(&self, job: Job) -> Result<(), ()> {
        match &*self.tx.read() {
            Some(tx) => tx.try_send(job).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Drains and closes: every job accepted before this call still runs;
    /// workers exit once the queue is empty, and this call returns only
    /// after they have. Idempotent.
    fn shutdown(&self) {
        drop(self.tx.write().take()); // disconnect: workers drain and exit
        for t in self.workers.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking TCP client speaking any [`ProtocolParser`].
///
/// **Timeout poisoning:** a call that fails with [`KvError::Timeout`]
/// leaves the stream desynchronized — the response may still arrive and
/// would be matched to the *next* request. The client therefore poisons
/// itself on timeout: subsequent calls fail fast with
/// [`KvError::Unavailable`] (retryable — reroute or reconnect) until
/// [`TcpClient::reconnect`] establishes a fresh stream and parser.
pub struct TcpClient {
    stream: TcpStream,
    parser: Box<dyn ProtocolParser>,
    scratch: BytesMut,
    addr: SocketAddr,
    read_timeout: Option<std::time::Duration>,
    poisoned: bool,
}

/// Default per-call read deadline. A server that accepts the connection
/// but never answers (hung handler, half-open socket) must surface as a
/// retryable [`KvError::Timeout`], not block the caller forever.
const DEFAULT_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

impl TcpClient {
    /// Connects to a [`TcpServer`] with the default read timeout.
    pub fn connect(addr: SocketAddr, parser: Box<dyn ProtocolParser>) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, parser, Some(DEFAULT_READ_TIMEOUT))
    }

    /// Connects, mapping transport failures to retryable [`KvError`]s: a
    /// refused or unreachable endpoint is [`KvError::Unavailable`] (the
    /// node is down — reroute), not an opaque I/O error.
    pub fn connect_kv(addr: SocketAddr, parser: Box<dyn ProtocolParser>) -> KvResult<Self> {
        Self::connect(addr, parser).map_err(|e| match e.kind() {
            std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset => {
                // No shard context at the transport layer; the sentinel
                // keeps the variant's retryable classification.
                KvError::Unavailable(ShardId(u32::MAX))
            }
            _ => KvError::from(e),
        })
    }

    /// Connects with an explicit per-read deadline (`None` blocks forever).
    pub fn connect_with_timeout(
        addr: SocketAddr,
        parser: Box<dyn ProtocolParser>,
        read_timeout: Option<std::time::Duration>,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        Ok(TcpClient {
            stream,
            parser,
            scratch: BytesMut::new(),
            addr,
            read_timeout,
            poisoned: false,
        })
    }

    /// Changes the per-read deadline on the live connection.
    pub fn set_read_timeout(
        &mut self,
        read_timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.read_timeout = read_timeout;
        self.stream.set_read_timeout(read_timeout)
    }

    /// Whether a timeout has poisoned this connection (see the type docs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Re-establishes the connection after a poisoning timeout. `parser`
    /// must be a fresh instance of the connection's protocol (the old one
    /// may hold half a late response).
    pub fn reconnect(&mut self, parser: Box<dyn ProtocolParser>) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.stream = stream;
        self.parser = parser;
        self.scratch = BytesMut::new();
        self.poisoned = false;
        Ok(())
    }

    fn check_poisoned(&self) -> KvResult<()> {
        if self.poisoned {
            // The stream may deliver a late response to an abandoned
            // request; matching it to a new request would hand the caller
            // someone else's answer. Fail fast until reconnect.
            Err(KvError::Unavailable(ShardId(u32::MAX)))
        } else {
            Ok(())
        }
    }

    /// Records a completed call, poisoning the connection when it timed
    /// out mid-protocol.
    fn note_outcome<T>(&mut self, result: KvResult<T>) -> KvResult<T> {
        if matches!(result, Err(KvError::Timeout)) {
            self.poisoned = true;
        }
        result
    }

    /// Records decoded response bodies. A well-formed reply carrying
    /// `Timeout` or `Unavailable` is the relay edge reporting its node is
    /// wedged or bouncing: the stream itself is still synchronized, but
    /// the node behind it must be backed off from exactly like a direct
    /// timeout — poison, so callers reroute/reconnect and the per-node
    /// circuit breaker sees the failure.
    fn note_response_bodies(&mut self, resps: &[Response]) {
        if resps.iter().any(|r| {
            matches!(
                r.result,
                Err(KvError::Timeout) | Err(KvError::Unavailable(_))
            )
        }) {
            self.poisoned = true;
        }
    }

    /// Sends one request and blocks for its response, at most the
    /// configured read timeout per read ([`KvError::Timeout`] after that).
    pub fn call(&mut self, req: &Request) -> KvResult<Response> {
        self.check_poisoned()?;
        let result = self.call_inner(req);
        let result = self.note_outcome(result);
        if let Ok(resp) = &result {
            self.note_response_bodies(std::slice::from_ref(resp));
        }
        result
    }

    fn call_inner(&mut self, req: &Request) -> KvResult<Response> {
        self.scratch.clear();
        self.parser.encode_request(req, &mut self.scratch);
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(resp) = self.parser.next_response()? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                // A connection that dies mid-response is indistinguishable
                // from a lost reply: the request may have been applied, so
                // this is a Timeout (retryable, maybe-applied), not an
                // opaque I/O error the client core would treat as fatal.
                return Err(KvError::Timeout);
            }
            self.parser.feed(&buf[..n]);
        }
    }

    /// Sends a batch of pipelined requests, then collects all responses.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> KvResult<Vec<Response>> {
        self.check_poisoned()?;
        let result = self.call_pipelined_inner(reqs);
        let result = self.note_outcome(result);
        if let Ok(resps) = &result {
            self.note_response_bodies(resps);
        }
        result
    }

    fn call_pipelined_inner(&mut self, reqs: &[Request]) -> KvResult<Vec<Response>> {
        self.scratch.clear();
        for r in reqs {
            self.parser.encode_request(r, &mut self.scratch);
        }
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut out = Vec::with_capacity(reqs.len());
        let mut buf = [0u8; 16 * 1024];
        while out.len() < reqs.len() {
            while let Some(resp) = self.parser.next_response()? {
                out.push(resp);
                if out.len() == reqs.len() {
                    return Ok(out);
                }
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                // Same maybe-applied classification as `call`.
                return Err(KvError::Timeout);
            }
            self.parser.feed(&buf[..n]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_proto::client::{Op, RespBody};
    use bespokv_proto::parser::BinaryParser;
    use bespokv_proto::text::RespParser;
    use bespokv_types::{ClientId, Key, RequestId, Value, VersionedValue};
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn kv_handler() -> Arc<Handler> {
        let store: Mutex<HashMap<Key, Value>> = Mutex::new(HashMap::new());
        Arc::new(move |req: Request| {
            let result = match &req.op {
                Op::Put { key, value } => {
                    store.lock().insert(key.clone(), value.clone());
                    Ok(RespBody::Done)
                }
                Op::Get { key } => store
                    .lock()
                    .get(key)
                    .cloned()
                    .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                    .ok_or(KvError::NotFound),
                _ => Err(KvError::Rejected("unsupported".into())),
            };
            Response {
                id: req.id,
                result,
            }
        })
    }

    fn rid(seq: u32) -> RequestId {
        RequestId::compose(ClientId(1), seq)
    }

    #[test]
    fn binary_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        assert_eq!(client.call(&put).unwrap().result, Ok(RespBody::Done));
        let get = Request::new(rid(1), Op::Get { key: Key::from("k") });
        let resp = client.call(&get).unwrap();
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("v"), 1)))
        );
        server.stop();
    }

    #[test]
    fn resp_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(RespParser::new(ClientId(0))) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        // Talk raw RESP like a redis-cli would.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n")
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        while got.len() < b"+OK\r\n$1\r\n1\r\n".len() {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(&got[..], b"+OK\r\n$1\r\n1\r\n");
        server.stop();
    }

    #[test]
    fn pipelined_batch_roundtrip() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                Request::new(
                    rid(i),
                    Op::Put {
                        key: Key::from(format!("k{i}")),
                        value: Value::from(format!("v{i}")),
                    },
                )
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), 32);
        assert!(resps.iter().all(|r| r.result == Ok(RespBody::Done)));
        server.stop();
    }

    #[test]
    fn worker_pool_mode_preserves_per_connection_order() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                worker_threads: Some(4),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..128)
            .map(|i| {
                Request::new(
                    rid(i),
                    Op::Put {
                        key: Key::from(format!("k{i}")),
                        value: Value::from(format!("v{i}")),
                    },
                )
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "responses reordered by worker pool");
            assert_eq!(resp.result, Ok(RespBody::Done));
        }
        server.stop();
    }

    #[test]
    fn worker_pool_survives_panicking_job() {
        let pool = WorkerPool::new(1, kv_handler().into());
        pool.submit(Box::new(|_h| panic!("handler panic"))).unwrap();
        // With a single worker, this job only runs if that worker survived
        // the panic above.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move |_h| {
            let _ = tx.send(());
        }))
        .unwrap();
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok(),
            "panicking job killed the only pool worker"
        );
    }

    /// Satellite regression: shutdown must be drain-then-close — every job
    /// the pool accepted (`submit` returned `Ok`) runs to completion before
    /// `shutdown` returns, and submissions racing the close fail cleanly
    /// with `Err` instead of being silently dropped.
    #[test]
    fn pool_shutdown_drains_accepted_jobs() {
        let pool = Arc::new(WorkerPool::new(2, kv_handler().into()));
        let done = Arc::new(AtomicU64::new(0));
        let mut accepted = 0u64;
        for _ in 0..64 {
            let done = Arc::clone(&done);
            if pool
                .submit(Box::new(move |_h| {
                    // Slow enough that the queue is still non-empty when
                    // shutdown() lands.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .is_ok()
            {
                accepted += 1;
            }
        }
        // Concurrent submitters racing the shutdown: accepted jobs count,
        // rejected ones must not run at all.
        let racer = {
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut racer_accepted = 0u64;
                for _ in 0..1000 {
                    let done = Arc::clone(&done);
                    match pool.submit(Box::new(move |_h| {
                        done.fetch_add(1, Ordering::SeqCst);
                    })) {
                        Ok(()) => racer_accepted += 1,
                        Err(()) => break, // pool closed: stop submitting
                    }
                }
                racer_accepted
            })
        };
        pool.shutdown();
        let racer_accepted = racer.join().unwrap();
        assert_eq!(
            done.load(Ordering::SeqCst),
            accepted + racer_accepted,
            "drain-then-close must run exactly the accepted jobs"
        );
        // Idempotent, and closed for good.
        pool.shutdown();
        assert!(pool.submit(Box::new(|_h| {})).is_err());
        assert!(pool.try_submit(Box::new(|_h| {})).is_err());
    }

    /// Satellite regression: stopping the server while pipelined load is in
    /// flight must terminate cleanly — no deadlock between connection
    /// threads submitting to the pool and the accept thread joining them.
    #[test]
    fn stop_under_active_pipelined_load() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                worker_threads: Some(2),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..4u32)
            .map(|t| {
                std::thread::spawn(move || {
                    let Ok(mut c) = TcpClient::connect(addr, Box::new(BinaryParser::new()))
                    else {
                        return;
                    };
                    loop {
                        let reqs: Vec<Request> = (0..64)
                            .map(|i| {
                                Request::new(
                                    RequestId::compose(ClientId(t), i),
                                    Op::Put {
                                        key: Key::from(format!("k{t}-{i}")),
                                        value: Value::from("v"),
                                    },
                                )
                            })
                            .collect();
                        // The stop() below kills the connection mid-batch at
                        // some point; any error ends the load loop.
                        if c.call_pipelined(&reqs).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        let (tx, rx) = mpsc::channel();
        let stopper = std::thread::spawn(move || {
            server.stop();
            let _ = tx.send(());
        });
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).is_ok(),
            "stop() hung under active pipelined load"
        );
        stopper.join().unwrap();
        for c in clients {
            c.join().unwrap();
        }
    }

    /// Satellite regression: a failed connection-thread spawn must cost that
    /// one connection (closed + counted), never the accept loop.
    #[test]
    fn spawn_failure_closes_connection_not_listener() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        server.inject_spawn_failures(1);
        // This connection's handler thread "fails to spawn": the server
        // must close the socket rather than panic the accept loop.
        let mut victim = TcpStream::connect(addr).unwrap();
        victim
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        match victim.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unhandled connection produced {n} bytes"),
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.stats().spawn_failures == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "spawn failure never counted"
            );
            std::thread::yield_now();
        }
        // The listener survived: the next connection is served normally.
        let mut client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        assert_eq!(client.call(&put).unwrap().result, Ok(RespBody::Done));
        let stats = server.stats();
        assert_eq!(stats.spawn_failures, 1);
        assert_eq!(stats.connections_accepted, 1, "failed spawn counted as accepted");
        server.stop();
    }

    #[test]
    fn protocol_error_drops_are_counted() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // An impossible frame length: the binary parser must reject it and
        // the server must drop the connection.
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 16];
        // Read returns 0 (or an error) once the server closes our socket.
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} response bytes to a corrupt frame"),
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.stats().protocol_error_drops == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "protocol error drop never counted"
            );
            std::thread::yield_now();
        }
        let stats = server.stats();
        assert_eq!(stats.protocol_error_drops, 1);
        assert_eq!(stats.connections_accepted, 1);
        server.stop();
    }

    /// Satellite: >=4 concurrent pipelined clients with mixed binary/RESP
    /// parsers; every client must see its own responses, complete and in
    /// order.
    #[test]
    fn concurrent_pipelined_mixed_parsers() {
        let store: Arc<Mutex<HashMap<Key, Value>>> = Arc::new(Mutex::new(HashMap::new()));
        let handler_for = |store: Arc<Mutex<HashMap<Key, Value>>>| -> Arc<Handler> {
            Arc::new(move |req: Request| {
                let result = match &req.op {
                    Op::Put { key, value } => {
                        store.lock().insert(key.clone(), value.clone());
                        Ok(RespBody::Done)
                    }
                    Op::Get { key } => store
                        .lock()
                        .get(key)
                        .cloned()
                        .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                        .ok_or(KvError::NotFound),
                    _ => Err(KvError::Rejected("unsupported".into())),
                };
                Response {
                    id: req.id,
                    result,
                }
            })
        };
        // One store, two protocol edges — as a controlet would expose both
        // the native binary protocol and a Redis-compatible one.
        let bin_server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler_for(Arc::clone(&store)),
        )
        .unwrap();
        let resp_server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(RespParser::new(ClientId(0))) as Box<dyn ProtocolParser>),
            handler_for(Arc::clone(&store)),
        )
        .unwrap();
        let bin_addr = bin_server.local_addr();
        let resp_addr = resp_server.local_addr();

        let mut threads = Vec::new();
        // 4 binary clients, each pipelining batches of distinct keys.
        for t in 0..4u32 {
            threads.push(std::thread::spawn(move || {
                let mut c = TcpClient::connect(bin_addr, Box::new(BinaryParser::new())).unwrap();
                for round in 0..10u32 {
                    let reqs: Vec<Request> = (0..32)
                        .map(|i| {
                            let seq = round * 32 + i;
                            Request::new(
                                RequestId::compose(ClientId(t), seq),
                                Op::Put {
                                    key: Key::from(format!("bin-{t}-{seq}")),
                                    value: Value::from(format!("val-{t}-{seq}")),
                                },
                            )
                        })
                        .collect();
                    let resps = c.call_pipelined(&reqs).unwrap();
                    assert_eq!(resps.len(), reqs.len(), "lost responses");
                    for (req, resp) in reqs.iter().zip(&resps) {
                        assert_eq!(resp.id, req.id, "responses reordered");
                        assert_eq!(resp.result, Ok(RespBody::Done));
                    }
                }
            }));
        }
        // 2 raw RESP clients, pipelining SETs and counting +OK replies.
        for t in 0..2u32 {
            threads.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(resp_addr).unwrap();
                stream.set_nodelay(true).unwrap();
                for round in 0..10u32 {
                    let mut wire = Vec::new();
                    for i in 0..16u32 {
                        let key = format!("resp-{t}-{round}-{i}");
                        let val = format!("rv-{t}-{round}-{i}");
                        wire.extend_from_slice(
                            format!(
                                "*3\r\n$3\r\nSET\r\n${}\r\n{key}\r\n${}\r\n{val}\r\n",
                                key.len(),
                                val.len()
                            )
                            .as_bytes(),
                        );
                    }
                    stream.write_all(&wire).unwrap();
                    let want = b"+OK\r\n".repeat(16);
                    let mut got = Vec::new();
                    let mut buf = [0u8; 1024];
                    while got.len() < want.len() {
                        let n = stream.read(&mut buf).unwrap();
                        assert!(n > 0, "connection closed early");
                        got.extend_from_slice(&buf[..n]);
                    }
                    assert_eq!(got, want, "RESP responses lost or corrupted");
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // Every write from every client must have landed.
        assert_eq!(store.lock().len(), 4 * 10 * 32 + 2 * 10 * 16);
        bin_server.stop();
        resp_server.stop();
    }

    #[test]
    fn unresponsive_server_surfaces_timeout() {
        // A listener that accepts and then goes silent: the client call
        // must come back with a retryable Timeout, not block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Keep the socket open without ever responding.
            std::thread::sleep(std::time::Duration::from_secs(2));
            drop(stream);
        });
        let mut client = TcpClient::connect_with_timeout(
            addr,
            Box::new(BinaryParser::new()),
            Some(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let req = Request::new(rid(0), Op::Get { key: Key::from("k") });
        let started = std::time::Instant::now();
        assert_eq!(client.call(&req), Err(KvError::Timeout));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "call blocked until the server hung up instead of timing out"
        );
        // The timeout poisoned the connection (the late reply could still
        // arrive): further calls fail fast with Unavailable, they must NOT
        // touch the desynchronized stream.
        assert!(client.is_poisoned());
        let started = std::time::Instant::now();
        assert_eq!(
            client.call_pipelined(std::slice::from_ref(&req)),
            Err(KvError::Unavailable(ShardId(u32::MAX)))
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "poisoned call should fail fast, not wait on the socket"
        );
        hold.join().unwrap();
    }

    /// Satellite regression: a timeout mid-conversation must not leave the
    /// client matching the late reply to the *next* request. The poisoned
    /// client refuses further calls until an explicit reconnect, after
    /// which calls see correct responses again.
    #[test]
    fn timeout_poisons_client_until_reconnect() {
        // A handler that stalls on one magic key, long enough to outlive
        // the client's read deadline — the late reply then sits in the
        // socket, exactly the desynchronization hazard.
        let handler: Arc<Handler> = Arc::new(move |req: Request| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("slow") {
                    std::thread::sleep(std::time::Duration::from_millis(400));
                }
            }
            Response {
                id: req.id,
                result: Ok(RespBody::Done),
            }
        });
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
        )
        .unwrap();
        let mut client = TcpClient::connect_with_timeout(
            server.local_addr(),
            Box::new(BinaryParser::new()),
            Some(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let slow = Request::new(rid(0), Op::Get { key: Key::from("slow") });
        let fast = Request::new(rid(1), Op::Get { key: Key::from("fast") });
        assert_eq!(client.call(&slow), Err(KvError::Timeout));
        assert!(client.is_poisoned());
        // Without poisoning, this call would read the late reply to `slow`
        // (id 0) and hand it back as the answer to `fast` (id 1). Instead it
        // must fail fast and leave the socket alone.
        assert_eq!(
            client.call(&fast),
            Err(KvError::Unavailable(ShardId(u32::MAX)))
        );
        // Wait out the slow handler so its late reply is certainly in
        // flight, then reconnect: the fresh stream has no stale bytes.
        std::thread::sleep(std::time::Duration::from_millis(400));
        client.reconnect(Box::new(BinaryParser::new())).unwrap();
        assert!(!client.is_poisoned());
        let resp = client.call(&fast).unwrap();
        assert_eq!(resp.id, fast.id, "reconnected client got a stale response");
        server.stop();
    }

    /// Same poisoning contract for pipelined batches: a timeout mid-batch
    /// desynchronizes every outstanding reply.
    #[test]
    fn pipelined_timeout_poisons_client() {
        let handler: Arc<Handler> = Arc::new(move |req: Request| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("slow") {
                    std::thread::sleep(std::time::Duration::from_millis(300));
                }
            }
            Response {
                id: req.id,
                result: Ok(RespBody::Done),
            }
        });
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
        )
        .unwrap();
        let mut client = TcpClient::connect_with_timeout(
            server.local_addr(),
            Box::new(BinaryParser::new()),
            Some(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let batch = vec![
            Request::new(rid(0), Op::Get { key: Key::from("fast") }),
            Request::new(rid(1), Op::Get { key: Key::from("slow") }),
            Request::new(rid(2), Op::Get { key: Key::from("fast") }),
        ];
        assert_eq!(client.call_pipelined(&batch), Err(KvError::Timeout));
        assert!(client.is_poisoned());
        let lone = Request::new(rid(3), Op::Get { key: Key::from("fast") });
        assert_eq!(
            client.call(&lone),
            Err(KvError::Unavailable(ShardId(u32::MAX)))
        );
        std::thread::sleep(std::time::Duration::from_millis(300));
        client.reconnect(Box::new(BinaryParser::new())).unwrap();
        let resp = client.call(&lone).unwrap();
        assert_eq!(resp.id, lone.id);
        server.stop();
    }

    #[test]
    fn connection_cap_refuses_flood() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                max_connections: Some(2),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // Two live connections, proven registered by a completed call each.
        let mut keep = Vec::new();
        for i in 0..2u32 {
            let mut c = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
            let r = Request::new(rid(i), Op::Put {
                key: Key::from(format!("k{i}")),
                value: Value::from("v"),
            });
            assert_eq!(c.call(&r).unwrap().result, Ok(RespBody::Done));
            keep.push(c);
        }
        // The third connection must be refused: the server drops it without
        // ever answering, and counts the refusal.
        let mut extra = TcpStream::connect(addr).unwrap();
        extra.write_all(&[0u8; 4]).ok();
        extra
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        match extra.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("refused connection got {n} response bytes"),
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.stats().connections_refused == 0 {
            assert!(std::time::Instant::now() < deadline, "refusal never counted");
            std::thread::yield_now();
        }
        let stats = server.stats();
        assert_eq!(stats.connections_accepted, 2);
        assert!(stats.connections_refused >= 1);
        // Existing connections keep working at the cap.
        let r = Request::new(rid(9), Op::Get { key: Key::from("k0") });
        assert!(keep[0].call(&r).unwrap().result.is_ok());
        server.stop();
    }

    /// Pipeline shed must preserve per-connection response order and reply
    /// `Overloaded` explicitly — inline mode.
    #[test]
    fn pipeline_cap_sheds_in_order_inline() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                pipeline_cap: Some(4),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                Request::new(rid(i), Op::Put {
                    key: Key::from(format!("k{i}")),
                    value: Value::from("v"),
                })
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len(), "shed responses must not be dropped");
        let mut ok = 0u32;
        let mut shed = 0u32;
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "shed reordered responses");
            match &resp.result {
                Ok(RespBody::Done) => ok += 1,
                Err(KvError::Overloaded) => shed += 1,
                other => panic!("unexpected result {other:?}"),
            }
        }
        assert!(ok >= 4, "the in-cap prefix of each read must be served");
        assert!(shed >= 1, "a 32-deep pipeline over cap 4 must shed");
        assert_eq!(server.stats().pipeline_shed, shed as u64);
        server.stop();
    }

    /// Pipeline shed in worker-pool mode: shed replies ride the same FIFO
    /// as pool results, so order still holds.
    #[test]
    fn pipeline_cap_sheds_in_order_pool() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                worker_threads: Some(2),
                pipeline_cap: Some(4),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                Request::new(rid(i), Op::Put {
                    key: Key::from(format!("k{i}")),
                    value: Value::from("v"),
                })
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len());
        let mut shed = 0u64;
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "pool-mode shed reordered responses");
            match &resp.result {
                Ok(RespBody::Done) => {}
                Err(KvError::Overloaded) => shed += 1,
                other => panic!("unexpected result {other:?}"),
            }
        }
        assert!(shed >= 1);
        let stats = server.stats();
        assert_eq!(stats.pipeline_shed + stats.pool_shed, shed);
        server.stop();
    }

    #[test]
    fn refused_connect_maps_to_unavailable() {
        // Grab a port that is then closed again: connecting must surface
        // as Unavailable (node down — reroute), not an opaque Io error.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match TcpClient::connect_kv(addr, Box::new(BinaryParser::new())) {
            Err(KvError::Unavailable(s)) => assert_eq!(s, ShardId(u32::MAX)),
            other => panic!("expected Unavailable, got {:?}", other.err()),
        }
    }

    #[test]
    fn mid_response_disconnect_maps_to_timeout() {
        // A server that accepts, reads the request, then hangs up without
        // answering: the reply may or may not have been applied, so the
        // client must see a retryable Timeout.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            drop(stream); // close mid-response
        });
        let mut client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let req = Request::new(rid(0), Op::Get { key: Key::from("k") });
        assert_eq!(client.call(&req), Err(KvError::Timeout));
        hold.join().unwrap();

        // Same for a pipelined batch cut off mid-stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            drop(stream);
        });
        let mut client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        assert_eq!(
            client.call_pipelined(std::slice::from_ref(&req)),
            Err(KvError::Timeout)
        );
        hold.join().unwrap();
    }

    /// A deferred handler that parks GETs of the key `park`, handing their
    /// completers to the returned registry; everything else is answered
    /// inline.
    fn parking_handler() -> (Arc<DeferHandler>, Arc<Mutex<Vec<Completer>>>) {
        let parked: Arc<Mutex<Vec<Completer>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = Arc::clone(&parked);
        let handler: Arc<DeferHandler> = Arc::new(move |req: Request, mut defer: Defer<'_>| {
            if let Op::Get { key } = &req.op {
                if *key == Key::from("park") {
                    registry.lock().push(defer.completer());
                    return Served::Parked;
                }
            }
            Served::Ready(Response {
                id: req.id,
                result: Ok(RespBody::Done),
            })
        });
        (handler, parked)
    }

    /// Tentpole seam: a parked request is completed from a *different*
    /// thread after the handler returned, and the client still sees the
    /// right response matched to the right id — on both dispatch modes of
    /// the blocking edge.
    #[test]
    fn deferred_handler_completes_from_another_thread() {
        for worker_threads in [None, Some(2)] {
            let (handler, parked) = parking_handler();
            let server = TcpServer::bind_deferred(
                "127.0.0.1:0",
                Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
                handler,
                ServerOptions {
                    worker_threads,
                    transport: Some(TransportKind::Blocking),
                    ..ServerOptions::default()
                },
            )
            .unwrap();
            let completer_thread = {
                let parked = Arc::clone(&parked);
                std::thread::spawn(move || loop {
                    if let Some(c) = parked.lock().pop() {
                        let id = c.rid();
                        c.complete(Response {
                            id,
                            result: Ok(RespBody::Value(VersionedValue::new(
                                Value::from("late"),
                                7,
                            ))),
                        });
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                })
            };
            let mut client =
                TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
            let req = Request::new(rid(0), Op::Get { key: Key::from("park") });
            let resp = client.call(&req).unwrap();
            assert_eq!(resp.id, req.id);
            assert_eq!(
                resp.result,
                Ok(RespBody::Value(VersionedValue::new(Value::from("late"), 7)))
            );
            completer_thread.join().unwrap();
            server.stop();
        }
    }

    /// Per-connection FIFO order survives a parked request in the middle
    /// of a pipelined batch (worker-pool mode: the park must not let later
    /// responses overtake).
    #[test]
    fn deferred_park_preserves_pipeline_order() {
        let (handler, parked) = parking_handler();
        let server = TcpServer::bind_deferred(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
            ServerOptions {
                worker_threads: Some(2),
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let completer_thread = {
            let parked = Arc::clone(&parked);
            std::thread::spawn(move || loop {
                if let Some(c) = parked.lock().pop() {
                    // Complete well after the inline requests have run.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    let id = c.rid();
                    c.complete(Response {
                        id,
                        result: Ok(RespBody::Done),
                    });
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            })
        };
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let batch = vec![
            Request::new(rid(0), Op::Get { key: Key::from("fast") }),
            Request::new(rid(1), Op::Get { key: Key::from("park") }),
            Request::new(rid(2), Op::Get { key: Key::from("fast") }),
        ];
        let resps = client.call_pipelined(&batch).unwrap();
        assert_eq!(resps.len(), 3);
        for (req, resp) in batch.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "park reordered pipelined responses");
            assert_eq!(resp.result, Ok(RespBody::Done));
        }
        completer_thread.join().unwrap();
        server.stop();
    }

    /// Dropping a completer without completing must deliver the stamped
    /// `Timeout` backstop — a lost completer can never wedge a connection.
    #[test]
    fn dropped_completer_backstops_with_timeout() {
        let handler: Arc<DeferHandler> = Arc::new(move |req: Request, mut defer: Defer<'_>| {
            // Take the completer and lose it immediately.
            drop(defer.completer());
            let _ = req;
            Served::Parked
        });
        let server = TcpServer::bind_deferred(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
            ServerOptions {
                transport: Some(TransportKind::Blocking),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let req = Request::new(rid(0), Op::Get { key: Key::from("k") });
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.result, Err(KvError::Timeout));
        server.stop();
    }

    /// Satellite (b) regression: a *well-formed* reply whose body is the
    /// relay edge's `Timeout` (wedged controlet) must poison the client
    /// exactly like a direct transport timeout, so the caller's per-node
    /// circuit breaker sees the gray failure and reroutes. Same for an
    /// `Unavailable` fast-fail bounce.
    #[test]
    fn relay_failure_body_poisons_client_like_direct_timeout() {
        for err in [KvError::Timeout, KvError::Unavailable(ShardId(3))] {
            let relay_err = err.clone();
            let handler: Arc<Handler> = Arc::new(move |req: Request| {
                if let Op::Get { key } = &req.op {
                    if *key == Key::from("wedged") {
                        return Response::err(req.id, relay_err.clone());
                    }
                }
                Response {
                    id: req.id,
                    result: Ok(RespBody::Done),
                }
            });
            let server = TcpServer::bind(
                "127.0.0.1:0",
                Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
                handler,
            )
            .unwrap();
            let mut client =
                TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
            let bad = Request::new(rid(0), Op::Get { key: Key::from("wedged") });
            let resp = client.call(&bad).unwrap();
            assert_eq!(resp.result, Err(err.clone()));
            assert!(
                client.is_poisoned(),
                "relay-path {err:?} body must poison like a direct failure"
            );
            // Breaker engaged: further calls fail fast without touching the
            // socket, until an explicit reconnect.
            let ok = Request::new(rid(1), Op::Get { key: Key::from("fine") });
            assert_eq!(
                client.call(&ok),
                Err(KvError::Unavailable(ShardId(u32::MAX)))
            );
            client.reconnect(Box::new(BinaryParser::new())).unwrap();
            assert_eq!(client.call(&ok).unwrap().result, Ok(RespBody::Done));
            // An Overloaded shed body, by contrast, must NOT poison.
            server.stop();
        }
    }

    /// Shed (`Overloaded`) bodies are load signals, not node death — they
    /// must not trip the connection-level breaker.
    #[test]
    fn overloaded_body_does_not_poison() {
        let handler: Arc<Handler> = Arc::new(move |req: Request| {
            Response::err(req.id, KvError::Overloaded)
        });
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler,
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let req = Request::new(rid(0), Op::Get { key: Key::from("k") });
        assert_eq!(client.call(&req).unwrap().result, Err(KvError::Overloaded));
        assert!(!client.is_poisoned());
        server.stop();
    }

    #[test]
    fn concurrent_connections() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c =
                        TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                    for i in 0..50u32 {
                        let r = Request::new(
                            RequestId::compose(ClientId(t), i),
                            Op::Put {
                                key: Key::from(format!("t{t}-{i}")),
                                value: Value::from("x"),
                            },
                        );
                        assert_eq!(c.call(&r).unwrap().result, Ok(RespBody::Done));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }
}
