//! Real TCP transport for the client edge.
//!
//! The simulator and the live runtime move messages in-process; this module
//! is the genuine network path: a thread-per-connection TCP server that
//! speaks any [`ProtocolParser`] (binary, RESP, or SSDB), and a blocking
//! client. The quickstart example serves a store over it, and the
//! socket-vs-kernel-bypass benchmark (paper section E) measures it against
//! the in-process fast path.

use bespokv_proto::client::{Request, Response};
use bespokv_proto::parser::ProtocolParser;
use bespokv_types::{KvError, KvResult};
use bytes::BytesMut;
use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Produces a fresh parser per connection.
pub type ParserFactory = dyn Fn() -> Box<dyn ProtocolParser> + Send + Sync;

/// Handles one request, producing the response. Shared across connections.
pub type Handler = dyn Fn(Request) -> Response + Send + Sync;

/// Tuning knobs for [`TcpServer::bind_with`].
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// When `Some(n)`, request handling runs on a bounded pool of `n`
    /// workers instead of inline on the connection thread. Per-connection
    /// response order is preserved; the bounded queue applies backpressure
    /// when all workers are busy.
    pub worker_threads: Option<usize>,
}

/// Counters exported by a running [`TcpServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpServerStats {
    /// Connections accepted since bind.
    pub connections_accepted: u64,
    /// Connections dropped because the peer sent a malformed stream.
    pub protocol_error_drops: u64,
}

/// State shared between the accept loop, connection threads, and the handle.
struct Shared {
    stop: AtomicBool,
    /// Clones of live connection streams, used to unblock reads on stop.
    conns: Mutex<HashMap<u64, TcpStream>>,
    accepted: AtomicU64,
    protocol_errors: AtomicU64,
    pool: Option<WorkerPool>,
}

/// A thread-per-connection TCP server with blocking I/O.
///
/// No polling anywhere: the accept loop blocks in `accept()` and is woken
/// for shutdown by a self-connection; connection threads block in `read()`
/// and are woken by `shutdown()` on a registered clone of their stream.
pub struct TcpServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"`) and starts accepting, with
    /// inline request handling.
    pub fn bind(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<Handler>,
    ) -> std::io::Result<TcpServer> {
        Self::bind_with(addr, make_parser, handler, ServerOptions::default())
    }

    /// Binds with explicit [`ServerOptions`].
    pub fn bind_with(
        addr: &str,
        make_parser: Arc<ParserFactory>,
        handler: Arc<Handler>,
        options: ServerOptions,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            accepted: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            pool: options
                .worker_threads
                .map(|n| WorkerPool::new(n, Arc::clone(&handler))),
        });
        let shared2 = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("bespokv-accept".into())
            .spawn(move || {
                let mut conn_threads = Vec::new();
                let mut next_id = 0u64;
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if shared2.stop.load(Ordering::Acquire) {
                                break; // the wake connection from stop()
                            }
                            // Reap threads of connections that already hung
                            // up, so a long-lived server accepting many
                            // short-lived connections doesn't grow this Vec
                            // without bound.
                            conn_threads.retain(|t: &JoinHandle<()>| !t.is_finished());
                            let id = next_id;
                            next_id += 1;
                            if let Ok(clone) = stream.try_clone() {
                                shared2.conns.lock().insert(id, clone);
                            }
                            shared2.accepted.fetch_add(1, Ordering::Relaxed);
                            let parser = make_parser();
                            let handler = Arc::clone(&handler);
                            let shared3 = Arc::clone(&shared2);
                            conn_threads.push(
                                std::thread::Builder::new()
                                    .name("bespokv-conn".into())
                                    .spawn(move || {
                                        let _ =
                                            serve_connection(stream, parser, handler, &shared3);
                                        shared3.conns.lock().remove(&id);
                                    })
                                    .expect("spawn connection thread"),
                            );
                        }
                        Err(_) => {
                            if shared2.stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
                // Unblock any connection registered after stop() drained the
                // registry, then wait for all of them.
                for (_, s) in shared2.conns.lock().drain() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })?;
        Ok(TcpServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current server counters.
    pub fn stats(&self) -> TcpServerStats {
        TcpServerStats {
            connections_accepted: self.shared.accepted.load(Ordering::Relaxed),
            protocol_error_drops: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes live connections, and waits for all server
    /// threads to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if !self.shared.stop.swap(true, Ordering::AcqRel) {
            // Wake the blocking accept() with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            // Wake blocking reads by closing both directions of every
            // registered connection.
            for (_, s) in self.shared.conns.lock().drain() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    mut parser: Box<dyn ProtocolParser>,
    handler: Arc<Handler>,
    shared: &Shared,
) -> KvResult<()> {
    stream.set_nodelay(true).map_err(KvError::from)?;
    let mut buf = [0u8; 16 * 1024];
    // Persistent per-connection response buffer: every response in a read
    // batch is encoded into it and flushed with a single write.
    let mut out = BytesMut::with_capacity(16 * 1024);
    let mut pending: VecDeque<mpsc::Receiver<Response>> = VecDeque::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Includes the error a stop()-initiated shutdown() produces.
            Err(_) => return Ok(()),
        };
        parser.feed(&buf[..n]);
        out.clear();
        loop {
            match parser.next_request() {
                Ok(Some(req)) => match &shared.pool {
                    None => {
                        let resp = handler(req);
                        parser.encode_response(&resp, &mut out);
                    }
                    Some(pool) => {
                        // Fan the request out to the pool; the FIFO of
                        // receivers preserves response order. Workers own
                        // their handler clone, so nothing is cloned here
                        // per request.
                        let (tx, rx) = mpsc::channel();
                        pool.submit(Box::new(move |h| {
                            let _ = tx.send(h(req));
                        }));
                        pending.push_back(rx);
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    // Malformed stream: count it and drop the connection.
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
        while let Some(rx) = pending.pop_front() {
            let resp = rx
                .recv()
                .map_err(|_| KvError::Io("worker pool dropped a request".into()))?;
            parser.encode_response(&resp, &mut out);
        }
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
    }
}

type Job = Box<dyn FnOnce(&Handler) + Send>;

/// A fixed-size pool of worker threads fed by a bounded queue. Each worker
/// owns its own clone of the request handler, so submitting a job costs no
/// per-request `Arc` traffic on the connection thread.
struct WorkerPool {
    tx: Option<channel::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n: usize, handler: Arc<Handler>) -> Self {
        let n = n.max(1);
        let (tx, rx) = channel::bounded::<Job>(n * 64);
        let workers = (0..n)
            .map(|i| {
                let rx = rx.clone();
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("bespokv-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking handler must cost one request, not
                            // one worker: the connection waiting on the job's
                            // dropped sender sees an error and is dropped,
                            // but pool capacity is preserved.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job(&*handler)
                            }));
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None; // disconnect: workers drain and exit
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// A blocking TCP client speaking any [`ProtocolParser`].
pub struct TcpClient {
    stream: TcpStream,
    parser: Box<dyn ProtocolParser>,
    scratch: BytesMut,
}

/// Default per-call read deadline. A server that accepts the connection
/// but never answers (hung handler, half-open socket) must surface as a
/// retryable [`KvError::Timeout`], not block the caller forever.
const DEFAULT_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

impl TcpClient {
    /// Connects to a [`TcpServer`] with the default read timeout.
    pub fn connect(addr: SocketAddr, parser: Box<dyn ProtocolParser>) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, parser, Some(DEFAULT_READ_TIMEOUT))
    }

    /// Connects with an explicit per-read deadline (`None` blocks forever).
    pub fn connect_with_timeout(
        addr: SocketAddr,
        parser: Box<dyn ProtocolParser>,
        read_timeout: Option<std::time::Duration>,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        Ok(TcpClient {
            stream,
            parser,
            scratch: BytesMut::new(),
        })
    }

    /// Changes the per-read deadline on the live connection.
    pub fn set_read_timeout(
        &mut self,
        read_timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(read_timeout)
    }

    /// Sends one request and blocks for its response, at most the
    /// configured read timeout per read ([`KvError::Timeout`] after that).
    pub fn call(&mut self, req: &Request) -> KvResult<Response> {
        self.scratch.clear();
        self.parser.encode_request(req, &mut self.scratch);
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(resp) = self.parser.next_response()? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                return Err(KvError::Io("connection closed mid-response".into()));
            }
            self.parser.feed(&buf[..n]);
        }
    }

    /// Sends a batch of pipelined requests, then collects all responses.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> KvResult<Vec<Response>> {
        self.scratch.clear();
        for r in reqs {
            self.parser.encode_request(r, &mut self.scratch);
        }
        self.stream
            .write_all(&self.scratch)
            .map_err(KvError::from)?;
        let mut out = Vec::with_capacity(reqs.len());
        let mut buf = [0u8; 16 * 1024];
        while out.len() < reqs.len() {
            while let Some(resp) = self.parser.next_response()? {
                out.push(resp);
                if out.len() == reqs.len() {
                    return Ok(out);
                }
            }
            let n = self.stream.read(&mut buf).map_err(KvError::from)?;
            if n == 0 {
                return Err(KvError::Io("connection closed mid-batch".into()));
            }
            self.parser.feed(&buf[..n]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_proto::client::{Op, RespBody};
    use bespokv_proto::parser::BinaryParser;
    use bespokv_proto::text::RespParser;
    use bespokv_types::{ClientId, Key, RequestId, Value, VersionedValue};
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn kv_handler() -> Arc<Handler> {
        let store: Mutex<HashMap<Key, Value>> = Mutex::new(HashMap::new());
        Arc::new(move |req: Request| {
            let result = match &req.op {
                Op::Put { key, value } => {
                    store.lock().insert(key.clone(), value.clone());
                    Ok(RespBody::Done)
                }
                Op::Get { key } => store
                    .lock()
                    .get(key)
                    .cloned()
                    .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                    .ok_or(KvError::NotFound),
                _ => Err(KvError::Rejected("unsupported".into())),
            };
            Response {
                id: req.id,
                result,
            }
        })
    }

    fn rid(seq: u32) -> RequestId {
        RequestId::compose(ClientId(1), seq)
    }

    #[test]
    fn binary_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let put = Request::new(
            rid(0),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        );
        assert_eq!(client.call(&put).unwrap().result, Ok(RespBody::Done));
        let get = Request::new(rid(1), Op::Get { key: Key::from("k") });
        let resp = client.call(&get).unwrap();
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("v"), 1)))
        );
        server.stop();
    }

    #[test]
    fn resp_protocol_over_tcp() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(RespParser::new(ClientId(0))) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        // Talk raw RESP like a redis-cli would.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n")
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        while got.len() < b"+OK\r\n$1\r\n1\r\n".len() {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(&got[..], b"+OK\r\n$1\r\n1\r\n");
        server.stop();
    }

    #[test]
    fn pipelined_batch_roundtrip() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                Request::new(
                    rid(i),
                    Op::Put {
                        key: Key::from(format!("k{i}")),
                        value: Value::from(format!("v{i}")),
                    },
                )
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), 32);
        assert!(resps.iter().all(|r| r.result == Ok(RespBody::Done)));
        server.stop();
    }

    #[test]
    fn worker_pool_mode_preserves_per_connection_order() {
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
            ServerOptions {
                worker_threads: Some(4),
            },
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let reqs: Vec<Request> = (0..128)
            .map(|i| {
                Request::new(
                    rid(i),
                    Op::Put {
                        key: Key::from(format!("k{i}")),
                        value: Value::from(format!("v{i}")),
                    },
                )
            })
            .collect();
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(resp.id, req.id, "responses reordered by worker pool");
            assert_eq!(resp.result, Ok(RespBody::Done));
        }
        server.stop();
    }

    #[test]
    fn worker_pool_survives_panicking_job() {
        let pool = WorkerPool::new(1, kv_handler());
        pool.submit(Box::new(|_h| panic!("handler panic")));
        // With a single worker, this job only runs if that worker survived
        // the panic above.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move |_h| {
            let _ = tx.send(());
        }));
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok(),
            "panicking job killed the only pool worker"
        );
    }

    #[test]
    fn protocol_error_drops_are_counted() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // An impossible frame length: the binary parser must reject it and
        // the server must drop the connection.
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 16];
        // Read returns 0 (or an error) once the server closes our socket.
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} response bytes to a corrupt frame"),
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.stats().protocol_error_drops == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "protocol error drop never counted"
            );
            std::thread::yield_now();
        }
        let stats = server.stats();
        assert_eq!(stats.protocol_error_drops, 1);
        assert_eq!(stats.connections_accepted, 1);
        server.stop();
    }

    /// Satellite: >=4 concurrent pipelined clients with mixed binary/RESP
    /// parsers; every client must see its own responses, complete and in
    /// order.
    #[test]
    fn concurrent_pipelined_mixed_parsers() {
        let store: Arc<Mutex<HashMap<Key, Value>>> = Arc::new(Mutex::new(HashMap::new()));
        let handler_for = |store: Arc<Mutex<HashMap<Key, Value>>>| -> Arc<Handler> {
            Arc::new(move |req: Request| {
                let result = match &req.op {
                    Op::Put { key, value } => {
                        store.lock().insert(key.clone(), value.clone());
                        Ok(RespBody::Done)
                    }
                    Op::Get { key } => store
                        .lock()
                        .get(key)
                        .cloned()
                        .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                        .ok_or(KvError::NotFound),
                    _ => Err(KvError::Rejected("unsupported".into())),
                };
                Response {
                    id: req.id,
                    result,
                }
            })
        };
        // One store, two protocol edges — as a controlet would expose both
        // the native binary protocol and a Redis-compatible one.
        let bin_server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            handler_for(Arc::clone(&store)),
        )
        .unwrap();
        let resp_server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(RespParser::new(ClientId(0))) as Box<dyn ProtocolParser>),
            handler_for(Arc::clone(&store)),
        )
        .unwrap();
        let bin_addr = bin_server.local_addr();
        let resp_addr = resp_server.local_addr();

        let mut threads = Vec::new();
        // 4 binary clients, each pipelining batches of distinct keys.
        for t in 0..4u32 {
            threads.push(std::thread::spawn(move || {
                let mut c = TcpClient::connect(bin_addr, Box::new(BinaryParser::new())).unwrap();
                for round in 0..10u32 {
                    let reqs: Vec<Request> = (0..32)
                        .map(|i| {
                            let seq = round * 32 + i;
                            Request::new(
                                RequestId::compose(ClientId(t), seq),
                                Op::Put {
                                    key: Key::from(format!("bin-{t}-{seq}")),
                                    value: Value::from(format!("val-{t}-{seq}")),
                                },
                            )
                        })
                        .collect();
                    let resps = c.call_pipelined(&reqs).unwrap();
                    assert_eq!(resps.len(), reqs.len(), "lost responses");
                    for (req, resp) in reqs.iter().zip(&resps) {
                        assert_eq!(resp.id, req.id, "responses reordered");
                        assert_eq!(resp.result, Ok(RespBody::Done));
                    }
                }
            }));
        }
        // 2 raw RESP clients, pipelining SETs and counting +OK replies.
        for t in 0..2u32 {
            threads.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(resp_addr).unwrap();
                stream.set_nodelay(true).unwrap();
                for round in 0..10u32 {
                    let mut wire = Vec::new();
                    for i in 0..16u32 {
                        let key = format!("resp-{t}-{round}-{i}");
                        let val = format!("rv-{t}-{round}-{i}");
                        wire.extend_from_slice(
                            format!(
                                "*3\r\n$3\r\nSET\r\n${}\r\n{key}\r\n${}\r\n{val}\r\n",
                                key.len(),
                                val.len()
                            )
                            .as_bytes(),
                        );
                    }
                    stream.write_all(&wire).unwrap();
                    let want = b"+OK\r\n".repeat(16);
                    let mut got = Vec::new();
                    let mut buf = [0u8; 1024];
                    while got.len() < want.len() {
                        let n = stream.read(&mut buf).unwrap();
                        assert!(n > 0, "connection closed early");
                        got.extend_from_slice(&buf[..n]);
                    }
                    assert_eq!(got, want, "RESP responses lost or corrupted");
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // Every write from every client must have landed.
        assert_eq!(store.lock().len(), 4 * 10 * 32 + 2 * 10 * 16);
        bin_server.stop();
        resp_server.stop();
    }

    #[test]
    fn unresponsive_server_surfaces_timeout() {
        // A listener that accepts and then goes silent: the client call
        // must come back with a retryable Timeout, not block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Keep the socket open without ever responding.
            std::thread::sleep(std::time::Duration::from_secs(2));
            drop(stream);
        });
        let mut client = TcpClient::connect_with_timeout(
            addr,
            Box::new(BinaryParser::new()),
            Some(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let req = Request::new(rid(0), Op::Get { key: Key::from("k") });
        let started = std::time::Instant::now();
        assert_eq!(client.call(&req), Err(KvError::Timeout));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "call blocked until the server hung up instead of timing out"
        );
        // Pipelined calls hit the same deadline.
        assert_eq!(
            client.call_pipelined(std::slice::from_ref(&req)),
            Err(KvError::Timeout)
        );
        hold.join().unwrap();
    }

    #[test]
    fn concurrent_connections() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            kv_handler(),
        )
        .unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c =
                        TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                    for i in 0..50u32 {
                        let r = Request::new(
                            RequestId::compose(ClientId(t), i),
                            Op::Put {
                                key: Key::from(format!("t{t}-{i}")),
                                value: Value::from("x"),
                            },
                        );
                        assert_eq!(c.call(&r).unwrap().result, Ok(RespBody::Done));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }
}
