//! Live threaded driver: real threads, real time, real channels.
//!
//! Runs the same [`Actor`] state machines as the simulator, but each actor
//! gets its own OS thread and an MPSC channel; `now()` reads the monotonic
//! clock; timers are kept in a per-thread heap and serviced with
//! `recv_timeout`. CPU charges from [`Context::charge`] are ignored — real
//! work takes real time here.
//!
//! This driver backs the integration tests (end-to-end correctness of the
//! controlet protocols with true parallelism) and the wall-clock latency
//! benchmarks.

use crate::actor::{Action, Actor, Addr, Context, Event};
use bespokv_proto::client::Response;
use bespokv_proto::NetMsg;
use bespokv_types::{Instant, KvError, OverloadCounters};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Envelope {
    Msg { from: Addr, msg: NetMsg },
    Stop,
}

/// Wall-clock gray-failure state injected into one actor thread. The
/// live counterpart of the simulator's `StallPlan` windows: the node
/// stays alive and its outbound traffic is untouched, only inbound
/// progress is impaired.
#[derive(Clone, Copy, Debug, Default)]
enum StallState {
    #[default]
    None,
    /// The whole thread stops: no mailbox drain, no timers — a GC pause
    /// or disk stall, not a crash.
    Wedge { until: std::time::Instant },
    /// Every message costs an extra `per_msg` of service time.
    Slow {
        until: std::time::Instant,
        per_msg: std::time::Duration,
    },
    /// Client/relay messages are held until the window closes;
    /// replication and control traffic (and timers) proceed, so
    /// heartbeats keep the node looking healthy.
    Gray { until: std::time::Instant },
}

struct StallCell {
    state: parking_lot::Mutex<StallState>,
}

impl StallCell {
    fn new() -> Self {
        StallCell { state: parking_lot::Mutex::new(StallState::None) }
    }

    fn set(&self, s: StallState) {
        *self.state.lock() = s;
    }

    /// Blocks while a wedge window is active (in small slices, so a
    /// cancelled or replaced window takes effect promptly).
    fn wedge_wait(&self) {
        loop {
            let until = match *self.state.lock() {
                StallState::Wedge { until } => until,
                _ => return,
            };
            let now = std::time::Instant::now();
            if now >= until {
                *self.state.lock() = StallState::None;
                return;
            }
            std::thread::sleep((until - now).min(std::time::Duration::from_millis(2)));
        }
    }

    /// Extra per-message service delay while a slow window is active.
    fn slow_delay(&self) -> Option<std::time::Duration> {
        let mut st = self.state.lock();
        match *st {
            StallState::Slow { until, per_msg } => {
                if std::time::Instant::now() >= until {
                    *st = StallState::None;
                    None
                } else {
                    Some(per_msg)
                }
            }
            _ => None,
        }
    }

    /// Whether a gray window currently holds client traffic.
    fn gray_active(&self) -> bool {
        let mut st = self.state.lock();
        match *st {
            StallState::Gray { until } => {
                if std::time::Instant::now() >= until {
                    *st = StallState::None;
                    false
                } else {
                    true
                }
            }
            _ => false,
        }
    }
}

struct Slot {
    tx: Option<Sender<Envelope>>,
    /// Messages currently queued in this slot's channel (in-service
    /// messages excluded): the mailbox depth the cap applies to.
    depth: Arc<AtomicUsize>,
    /// Gray-failure injection state consumed by this slot's actor loop.
    stall: Arc<StallCell>,
}

struct Router {
    slots: RwLock<Vec<Slot>>,
    /// Bounded-mailbox cap on queued client requests per actor; 0 means
    /// unbounded. Replication/control traffic is always enqueued —
    /// shedding it would turn overload into replica divergence.
    client_cap: AtomicUsize,
    counters: RwLock<Option<Arc<OverloadCounters>>>,
}

impl Router {
    fn send(&self, from: Addr, to: Addr, msg: NetMsg) {
        {
            // Sends to dead or unknown actors are silently dropped,
            // matching the fail-stop network semantics of the simulator.
            let slots = self.slots.read();
            let Some(slot) = slots.get(to.0 as usize) else {
                return;
            };
            let Some(tx) = &slot.tx else { return };
            let cap = self.client_cap.load(Ordering::Relaxed);
            let shed = cap != 0
                && matches!(&msg, NetMsg::Client(_))
                && slot.depth.load(Ordering::Acquire) >= cap;
            if !shed {
                slot.depth.fetch_add(1, Ordering::AcqRel);
                let _ = tx.send(Envelope::Msg { from, msg });
                return;
            }
        }
        // Full mailbox: answer the client explicitly instead of queueing
        // without bound (or dropping silently). The reply bypasses the
        // cap because it is a ClientResp, not a Client request.
        let NetMsg::Client(req) = msg else {
            unreachable!("only client requests are shed")
        };
        if let Some(c) = &*self.counters.read() {
            c.mailbox_shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let reply = NetMsg::ClientResp(Response::err(req.id, KvError::Overloaded));
        self.send(to, from, reply);
    }
}

/// The live runtime: a set of actor threads plus a shared router.
pub struct LiveRuntime {
    router: Arc<Router>,
    handles: Vec<Option<JoinHandle<Box<dyn Actor>>>>,
    epoch: std::time::Instant,
}

impl LiveRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        LiveRuntime {
            router: Arc::new(Router {
                slots: RwLock::new(Vec::new()),
                client_cap: AtomicUsize::new(0),
                counters: RwLock::new(None),
            }),
            handles: Vec::new(),
            epoch: std::time::Instant::now(),
        }
    }

    /// Arms the bounded-mailbox model: client requests sent to an actor
    /// with `cap` messages already queued are answered `Overloaded`
    /// (counted in `counters.mailbox_shed`). A cap of 0 disables it.
    pub fn set_mailbox_cap(&self, cap: usize, counters: Arc<OverloadCounters>) {
        *self.router.counters.write() = Some(counters);
        self.router.client_cap.store(cap, Ordering::Relaxed);
    }

    /// Spawns an actor on its own thread; it receives [`Event::Start`]
    /// immediately.
    pub fn spawn(&mut self, actor: Box<dyn Actor>) -> Addr {
        let addr = Addr(self.handles.len() as u32);
        let (tx, rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        let stall = Arc::new(StallCell::new());
        self.router.slots.write().push(Slot {
            tx: Some(tx),
            depth: Arc::clone(&depth),
            stall: Arc::clone(&stall),
        });
        let router = Arc::clone(&self.router);
        let epoch = self.epoch;
        let handle = std::thread::Builder::new()
            .name(format!("actor-{}", addr.0))
            .spawn(move || actor_loop(actor, addr, rx, router, epoch, depth, stall))
            .expect("spawn actor thread");
        self.handles.push(Some(handle));
        addr
    }

    /// Wedges the actor at `addr` for `dur`: its thread stops draining
    /// the mailbox and firing timers entirely, while its already-sent
    /// outbound traffic stands — a gray failure, not a crash.
    pub fn wedge(&self, addr: Addr, dur: std::time::Duration) {
        self.set_stall(addr, StallState::Wedge { until: std::time::Instant::now() + dur });
    }

    /// Slows the actor at `addr` for `dur`: each inbound message costs an
    /// extra `per_msg` of service time.
    pub fn slow(&self, addr: Addr, dur: std::time::Duration, per_msg: std::time::Duration) {
        self.set_stall(
            addr,
            StallState::Slow { until: std::time::Instant::now() + dur, per_msg },
        );
    }

    /// Gray-partitions the actor at `addr` for `dur`: inbound client and
    /// relay traffic is held until the window closes while replication,
    /// control traffic, and timers proceed — heartbeats stay green.
    pub fn gray(&self, addr: Addr, dur: std::time::Duration) {
        self.set_stall(addr, StallState::Gray { until: std::time::Instant::now() + dur });
    }

    fn set_stall(&self, addr: Addr, s: StallState) {
        if let Some(slot) = self.router.slots.read().get(addr.0 as usize) {
            slot.stall.set(s);
        }
    }

    /// Sends a message into the runtime from outside (tests, harnesses).
    pub fn send(&self, from: Addr, to: Addr, msg: NetMsg) {
        self.router.send(from, to, msg);
    }

    /// Registers an external mailbox: an address that participates in the
    /// message fabric without an actor thread behind it. Edge threads (TCP
    /// workers, benches) use it to inject requests into actors and receive
    /// the responses those actors address back to the mailbox.
    pub fn register_mailbox(&mut self) -> Mailbox {
        let addr = Addr(self.handles.len() as u32);
        let (tx, rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        self.router.slots.write().push(Slot {
            tx: Some(tx),
            depth: Arc::clone(&depth),
            stall: Arc::new(StallCell::new()),
        });
        // No thread: keep the handle table aligned with addresses so
        // `kill`/`shutdown` indexing stays valid (both are no-ops here).
        self.handles.push(None);
        Mailbox {
            addr,
            rx,
            router: Arc::clone(&self.router),
            depth,
        }
    }

    /// Kills an actor: its channel is closed and further sends to it drop.
    /// Returns the actor's final state once its thread exits.
    pub fn kill(&mut self, addr: Addr) -> Option<Box<dyn Actor>> {
        let sender = self.router.slots.write()[addr.0 as usize].tx.take();
        if let Some(tx) = sender {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles[addr.0 as usize]
            .take()
            .and_then(|h| h.join().ok())
    }

    /// Stops every actor and returns their final states, indexed by
    /// address.
    pub fn shutdown(mut self) -> Vec<Option<Box<dyn Actor>>> {
        let addrs: Vec<Addr> = (0..self.handles.len() as u32).map(Addr).collect();
        addrs.into_iter().map(|a| self.kill(a)).collect()
    }

    /// Monotonic time since the runtime was created.
    pub fn now(&self) -> Instant {
        Instant(self.epoch.elapsed().as_nanos() as u64)
    }

    /// A clone-cheap handle on the runtime clock: yields [`Self::now`]
    /// without borrowing the runtime, for edge layers that check request
    /// deadlines from TCP worker or reactor threads.
    pub fn clock(&self) -> std::sync::Arc<dyn Fn() -> Instant + Send + Sync> {
        let epoch = self.epoch;
        std::sync::Arc::new(move || Instant(epoch.elapsed().as_nanos() as u64))
    }
}

impl Default for LiveRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// An external participant in a [`LiveRuntime`]'s message fabric: it has an
/// address actors can reply to, but no thread or actor of its own. Cloning
/// shares the underlying channel (clones *steal* messages from each other —
/// use one receiving thread, or one clone per independent request stream).
#[derive(Clone)]
pub struct Mailbox {
    addr: Addr,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
    depth: Arc<AtomicUsize>,
}

impl Mailbox {
    /// The address actors see as the sender of this mailbox's messages.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Sends a message into the runtime, from this mailbox's address.
    pub fn send(&self, to: Addr, msg: NetMsg) {
        self.router.send(self.addr, to, msg);
    }

    /// Receives the next message addressed to this mailbox, waiting at most
    /// `timeout`. Returns `None` on timeout or runtime teardown.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<(Addr, NetMsg)> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(Envelope::Msg { from, msg }) => {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    return Some((from, msg));
                }
                // A Stop can reach a mailbox via kill(); ignore and keep
                // draining until the deadline.
                Ok(Envelope::Stop) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(Addr, NetMsg)> {
        loop {
            match self.rx.try_recv() {
                Ok(Envelope::Msg { from, msg }) => {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    return Some((from, msg));
                }
                Ok(Envelope::Stop) => continue,
                Err(_) => return None,
            }
        }
    }
}

struct PendingTimer {
    due: Instant,
    seq: u64,
    token: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

fn actor_loop(
    mut actor: Box<dyn Actor>,
    addr: Addr,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
    epoch: std::time::Instant,
    depth: Arc<AtomicUsize>,
    stall: Arc<StallCell>,
) -> Box<dyn Actor> {
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let now = |epoch: std::time::Instant| Instant(epoch.elapsed().as_nanos() as u64);

    let dispatch = |actor: &mut Box<dyn Actor>,
                        ev: Event,
                        timers: &mut BinaryHeap<PendingTimer>,
                        timer_seq: &mut u64| {
        let t = now(epoch);
        let mut ctx = Context::new(t, addr);
        actor.on_event(ev, &mut ctx);
        for action in ctx.take_actions() {
            match action {
                Action::Send { to, msg } => router.send(addr, to, msg),
                Action::Timer { delay, token } => {
                    timers.push(PendingTimer {
                        due: t + delay,
                        seq: *timer_seq,
                        token,
                    });
                    *timer_seq += 1;
                }
            }
        }
    };

    dispatch(&mut actor, Event::Start, &mut timers, &mut timer_seq);

    // Cap on messages drained per wakeup before timers are re-checked:
    // large enough to amortize the clock read and timer-heap probe across a
    // burst, small enough that a flooded actor still services timers.
    const BURST: usize = 128;

    // Client messages held by an active gray window, replayed in arrival
    // order once it closes. Dropped with the actor if it stops mid-window
    // (the node died; held traffic dies with its socket).
    let mut held: Vec<(Addr, NetMsg)> = Vec::new();

    'outer: loop {
        // A wedge stalls the whole thread: no drain, no timers.
        stall.wedge_wait();
        // Release gray-held client traffic once the window closes.
        if !held.is_empty() && !stall.gray_active() {
            for (from, msg) in held.drain(..) {
                dispatch(&mut actor, Event::Msg { from, msg }, &mut timers, &mut timer_seq);
            }
        }
        // Fire all due timers first.
        let t = now(epoch);
        while timers.peek().is_some_and(|p| p.due <= t) {
            let p = timers.pop().expect("peeked");
            dispatch(
                &mut actor,
                Event::Timer { token: p.token },
                &mut timers,
                &mut timer_seq,
            );
        }
        // Wait for the next message or the next timer deadline; while
        // messages are gray-held, poll in short slices so the release
        // happens promptly even if nothing else arrives.
        let timer_wait: Option<std::time::Duration> = timers
            .peek()
            .map(|p| p.due.saturating_since(now(epoch)).into());
        let hold_wait = (!held.is_empty()).then(|| std::time::Duration::from_millis(2));
        let wait = match (timer_wait, hold_wait) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let env = match wait {
            Some(wait) => match rx.recv_timeout(wait) {
                Ok(env) => env,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(env) => env,
                Err(_) => break,
            },
        };
        // Drain any burst that queued up behind the first message without
        // re-arming the timer machinery per message.
        let mut env = Some(env);
        let mut drained = 0;
        while let Some(e) = env.take() {
            match e {
                Envelope::Msg { from, msg } => {
                    depth.fetch_sub(1, Ordering::AcqRel);
                    // A wedge that lands while the thread was parked in
                    // recv() must still stall the message it woke up for.
                    stall.wedge_wait();
                    if matches!(msg, NetMsg::Client(_)) && stall.gray_active() {
                        held.push((from, msg));
                    } else {
                        if let Some(d) = stall.slow_delay() {
                            std::thread::sleep(d);
                        }
                        dispatch(
                            &mut actor,
                            Event::Msg { from, msg },
                            &mut timers,
                            &mut timer_seq,
                        );
                    }
                }
                Envelope::Stop => break 'outer,
            }
            drained += 1;
            if drained < BURST {
                env = rx.try_recv().ok();
            }
        }
    }
    actor
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_proto::CoordMsg;
    use bespokv_types::Duration;
    use std::any::Any;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Polls a shared counter until it reaches `want` or five seconds pass.
    /// Condition-based instead of a fixed sleep: fast when the runtime is
    /// fast, and a real failure (not a scheduling hiccup) when it's not.
    fn wait_for_count(counter: &AtomicUsize, want: usize, what: &str) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while counter.load(Ordering::Acquire) < want {
            assert!(
                std::time::Instant::now() < deadline,
                "{what}: stuck at {} of {want}",
                counter.load(Ordering::Acquire)
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    struct Ponger {
        seen: usize,
    }

    impl Actor for Ponger {
        fn on_event(&mut self, ev: Event, ctx: &mut Context) {
            if let Event::Msg { from, msg } = ev {
                self.seen += 1;
                ctx.send(from, msg);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        target: Addr,
        replies: Arc<AtomicUsize>,
        to_send: usize,
    }

    impl Actor for Pinger {
        fn on_event(&mut self, ev: Event, ctx: &mut Context) {
            match ev {
                Event::Start => {
                    for _ in 0..self.to_send {
                        ctx.send(self.target, NetMsg::Coord(CoordMsg::GetShardMap));
                    }
                }
                Event::Msg { .. } => {
                    self.replies.fetch_add(1, Ordering::AcqRel);
                }
                _ => {}
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn live_ping_pong() {
        let mut rt = LiveRuntime::new();
        let replies = Arc::new(AtomicUsize::new(0));
        let ponger = rt.spawn(Box::new(Ponger { seen: 0 }));
        let pinger = rt.spawn(Box::new(Pinger {
            target: ponger,
            replies: Arc::clone(&replies),
            to_send: 100,
        }));
        wait_for_count(&replies, 100, "ping-pong replies");
        rt.kill(pinger).expect("pinger state");
        let mut ponger_box = rt.kill(ponger).expect("ponger state");
        let q = ponger_box.as_any().downcast_mut::<Ponger>().unwrap();
        assert_eq!(q.seen, 100);
    }

    #[test]
    fn timers_fire_in_live_mode() {
        struct Beeper {
            beeps: Arc<AtomicUsize>,
        }
        impl Actor for Beeper {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                match ev {
                    Event::Start => ctx.set_timer(Duration::from_millis(5), 7),
                    Event::Timer { token: 7 } => {
                        let done = self.beeps.fetch_add(1, Ordering::AcqRel) + 1;
                        if done < 5 {
                            ctx.set_timer(Duration::from_millis(5), 7);
                        }
                    }
                    _ => {}
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut rt = LiveRuntime::new();
        let beeps = Arc::new(AtomicUsize::new(0));
        let b = rt.spawn(Box::new(Beeper {
            beeps: Arc::clone(&beeps),
        }));
        wait_for_count(&beeps, 5, "timer beeps");
        rt.kill(b).unwrap();
        assert_eq!(beeps.load(Ordering::Acquire), 5, "timer re-armed past its stop");
    }

    #[test]
    fn mailbox_round_trips_through_an_actor() {
        let mut rt = LiveRuntime::new();
        let ponger = rt.spawn(Box::new(Ponger { seen: 0 }));
        let mailbox = rt.register_mailbox();
        mailbox.send(ponger, NetMsg::Coord(CoordMsg::GetShardMap));
        let (from, msg) = mailbox
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("echo");
        assert_eq!(from, ponger);
        assert!(matches!(msg, NetMsg::Coord(CoordMsg::GetShardMap)));
        // Address table stays aligned: killing the mailbox address is a
        // no-op and the actor after it is still reachable.
        let second = rt.spawn(Box::new(Ponger { seen: 0 }));
        assert_eq!(second.0, mailbox.addr().0 + 1);
        mailbox.send(second, NetMsg::Coord(CoordMsg::GetShardMap));
        assert!(mailbox.recv_timeout(std::time::Duration::from_secs(5)).is_some());
        rt.kill(ponger).expect("ponger state");
        assert!(rt.kill(mailbox.addr()).is_none(), "mailbox has no actor state");
    }

    #[test]
    fn full_mailbox_sheds_client_requests_with_reply() {
        use bespokv_proto::client::{Op, Request, RespBody, Response};
        use bespokv_types::{ClientId, Key, RequestId};

        /// Takes 20 ms of real time per request, then replies Done.
        struct SlowServer;
        impl Actor for SlowServer {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                if let Event::Msg { from, msg: NetMsg::Client(req) } = ev {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    ctx.send(from, NetMsg::ClientResp(Response::ok(req.id, RespBody::Done)));
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut rt = LiveRuntime::new();
        let counters = Arc::new(OverloadCounters::new());
        rt.set_mailbox_cap(2, Arc::clone(&counters));
        let server = rt.spawn(Box::new(SlowServer));
        let mailbox = rt.register_mailbox();
        const N: usize = 20;
        for i in 0..N as u32 {
            let req = Request::new(
                RequestId::compose(ClientId(3), i),
                Op::Get { key: Key::from("k") },
            );
            mailbox.send(server, NetMsg::Client(req));
        }
        // Every request must be answered — served or explicitly shed.
        let mut ok = 0usize;
        let mut shed = 0usize;
        for _ in 0..N {
            let (_, msg) = mailbox
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("a reply for every request");
            match msg {
                NetMsg::ClientResp(r) => match r.result {
                    Ok(_) => ok += 1,
                    Err(KvError::Overloaded) => shed += 1,
                    other => panic!("unexpected result {other:?}"),
                },
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert_eq!(ok + shed, N);
        assert!(ok >= 1, "the in-cap requests must be served");
        assert!(
            shed >= N - 5,
            "a 20-deep burst against cap 2 must mostly shed, shed={shed}"
        );
        assert_eq!(counters.snapshot().mailbox_shed, shed as u64);
        rt.kill(server);
    }

    #[test]
    fn wedge_stalls_then_releases_an_actor() {
        let mut rt = LiveRuntime::new();
        let replies = Arc::new(AtomicUsize::new(0));
        let ponger = rt.spawn(Box::new(Ponger { seen: 0 }));
        rt.wedge(ponger, std::time::Duration::from_millis(80));
        let pinger = rt.spawn(Box::new(Pinger {
            target: ponger,
            replies: Arc::clone(&replies),
            to_send: 10,
        }));
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(
            replies.load(Ordering::Acquire),
            0,
            "wedged actor must not answer mid-window"
        );
        wait_for_count(&replies, 10, "post-wedge replies");
        rt.kill(pinger);
        rt.kill(ponger);
    }

    #[test]
    fn gray_holds_client_traffic_but_not_control() {
        use bespokv_proto::client::{Op, Request};
        use bespokv_types::{ClientId, Key, RequestId};

        let mut rt = LiveRuntime::new();
        let ponger = rt.spawn(Box::new(Ponger { seen: 0 }));
        rt.gray(ponger, std::time::Duration::from_millis(80));
        let mailbox = rt.register_mailbox();
        let req = Request::new(
            RequestId::compose(ClientId(1), 0),
            Op::Get { key: Key::from("k") },
        );
        mailbox.send(ponger, NetMsg::Client(req));
        mailbox.send(ponger, NetMsg::Coord(CoordMsg::GetShardMap));
        // Control traffic echoes back promptly despite the gray window…
        let (_, first) = mailbox
            .recv_timeout(std::time::Duration::from_millis(40))
            .expect("control passes through a gray window");
        assert!(matches!(first, NetMsg::Coord(_)), "{first:?}");
        // …and the held client request is replayed once the window closes.
        let (_, second) = mailbox
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("client traffic released after the window");
        assert!(matches!(second, NetMsg::Client(_)), "{second:?}");
        rt.kill(ponger);
    }

    #[test]
    fn sends_to_killed_actors_are_dropped() {
        let mut rt = LiveRuntime::new();
        let ponger = rt.spawn(Box::new(Ponger { seen: 0 }));
        rt.kill(ponger);
        // Must not panic or block.
        rt.send(Addr(99), ponger, NetMsg::Coord(CoordMsg::GetShardMap));
    }

    #[test]
    fn shutdown_returns_all_states() {
        let mut rt = LiveRuntime::new();
        rt.spawn(Box::new(Ponger { seen: 0 }));
        rt.spawn(Box::new(Ponger { seen: 0 }));
        let states = rt.shutdown();
        assert_eq!(states.len(), 2);
        assert!(states.iter().all(|s| s.is_some()));
    }
}
