//! Property-style tests: every wire encoding round-trips, under any payload
//! and any packetization.
//!
//! Implemented as seeded exhaustive-random loops (deterministic across
//! runs) rather than a proptest dependency; each case is generated from a
//! fixed-seed `StdRng` so failures reproduce exactly.

use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::frame::{encode_frame, FrameDecoder};
use bespokv_proto::messages::{LogEntry, NetMsg, ReplMsg};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_proto::wire::{Decode, Encode};
use bespokv_types::{
    ClientId, ConsistencyLevel, Duration, Instant, Key, KvError, NodeId, RequestId, ShardId, Value,
};
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rand_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

fn rand_name(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn rand_key(rng: &mut StdRng) -> Key {
    Key::from(rand_bytes(rng, 64))
}

fn rand_value(rng: &mut StdRng) -> Value {
    Value::from(rand_bytes(rng, 256))
}

fn rand_rid(rng: &mut StdRng) -> RequestId {
    RequestId::compose(ClientId(rng.gen::<u32>()), rng.gen::<u32>())
}

fn rand_level(rng: &mut StdRng) -> ConsistencyLevel {
    match rng.gen_range(0..3) {
        0 => ConsistencyLevel::Default,
        1 => ConsistencyLevel::Strong,
        _ => ConsistencyLevel::Eventual,
    }
}

/// Covers every `Op` variant.
fn rand_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..6) {
        0 => Op::Put {
            key: rand_key(rng),
            value: rand_value(rng),
        },
        1 => Op::Get { key: rand_key(rng) },
        2 => Op::Del { key: rand_key(rng) },
        3 => Op::Scan {
            start: rand_key(rng),
            end: rand_key(rng),
            limit: rng.gen::<u32>(),
        },
        4 => Op::CreateTable {
            name: rand_name(rng, 16),
        },
        _ => Op::DeleteTable {
            name: rand_name(rng, 16),
        },
    }
}

fn rand_request(rng: &mut StdRng) -> Request {
    Request {
        id: rand_rid(rng),
        table: rand_name(rng, 8),
        op: rand_op(rng),
        level: rand_level(rng),
        deadline: Instant(rng.gen::<u64>()),
    }
}

fn rand_error(rng: &mut StdRng) -> KvError {
    match rng.gen_range(0..6) {
        0 => KvError::NotFound,
        1 => KvError::Timeout,
        2 => KvError::LockContended,
        3 => {
            let len = rng.gen_range(0..32);
            KvError::Io(
                (0..len)
                    .map(|_| (b' ' + rng.gen_range(0..95u8)) as char)
                    .collect(),
            )
        }
        4 => KvError::WrongNode {
            node: NodeId(rng.gen::<u32>()),
            hint: if rng.gen::<bool>() {
                Some(NodeId(rng.gen::<u32>()))
            } else {
                None
            },
        },
        _ => KvError::Unavailable(ShardId(rng.gen::<u32>())),
    }
}

fn rand_body(rng: &mut StdRng) -> RespBody {
    match rng.gen_range(0..3) {
        0 => RespBody::Done,
        1 => RespBody::Value(bespokv_types::VersionedValue::new(
            rand_value(rng),
            rng.gen::<u64>(),
        )),
        _ => RespBody::Entries(
            (0..rng.gen_range(0..8))
                .map(|_| {
                    (
                        rand_key(rng),
                        bespokv_types::VersionedValue::new(rand_value(rng), rng.gen::<u64>()),
                    )
                })
                .collect(),
        ),
    }
}

fn rand_response(rng: &mut StdRng) -> Response {
    Response {
        id: rand_rid(rng),
        result: if rng.gen::<bool>() {
            Ok(rand_body(rng))
        } else {
            Err(rand_error(rng))
        },
    }
}

fn rand_entry(rng: &mut StdRng) -> LogEntry {
    LogEntry {
        table: rand_name(rng, 8),
        key: rand_key(rng),
        value: if rng.gen::<bool>() {
            Some(rand_value(rng))
        } else {
            None
        },
        version: rng.gen::<u64>(),
    }
}

#[test]
fn request_wire_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5ec0de);
    for _ in 0..CASES {
        let req = rand_request(&mut rng);
        let bytes = req.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);
        // Re-encoding the decoded value must be byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }
}

#[test]
fn response_wire_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xa11ce);
    for _ in 0..CASES {
        let resp = rand_response(&mut rng);
        let bytes = resp.to_bytes();
        let back = Response::from_bytes(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.to_bytes(), bytes);
    }
}

#[test]
fn repl_msg_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x2e91);
    for _ in 0..CASES {
        let entries: Vec<LogEntry> = (0..rng.gen_range(0..8))
            .map(|_| rand_entry(&mut rng))
            .collect();
        let msg = NetMsg::Repl(ReplMsg::PropBatch {
            shard: ShardId(rng.gen::<u32>()),
            epoch: 1,
            first_seq: rng.gen::<u64>(),
            floor: rng.gen::<u64>(),
            budget: Duration(rng.gen::<u64>()),
            entries,
        });
        let bytes = msg.to_bytes();
        assert_eq!(NetMsg::from_bytes(&bytes).unwrap(), msg);
    }
}

/// The frame decoder reassembles identically regardless of how the byte
/// stream is chopped into delivery chunks.
#[test]
fn framing_is_chunking_invariant() {
    let mut rng = StdRng::seed_from_u64(0xf4a3e);
    for _ in 0..CASES {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..6))
            .map(|_| rand_bytes(&mut rng, 128))
            .collect();
        let mut wire = BytesMut::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < wire.len() {
            let step = rng.gen_range(1..64usize).min(wire.len() - pos);
            dec.feed(&wire[pos..pos + step]);
            pos += step;
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.pending(), 0);
    }
}

/// The binary parser round-trips pipelined request batches under any
/// chunking.
#[test]
fn binary_parser_pipelining() {
    let mut rng = StdRng::seed_from_u64(0xb17e5);
    for _ in 0..CASES {
        let reqs: Vec<Request> = (0..rng.gen_range(1..8))
            .map(|_| rand_request(&mut rng))
            .collect();
        let chunk = rng.gen_range(1..96usize);
        let mut client = BinaryParser::new();
        let mut wire = BytesMut::new();
        for r in &reqs {
            client.encode_request(r, &mut wire);
        }
        let mut server = BinaryParser::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            server.feed(piece);
            while let Some(r) = server.next_request().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, reqs);
    }
}

/// Truncating an encoded request at ANY offset never panics and never
/// yields a bogus success for a strict prefix (the format is
/// self-delimiting).
#[test]
fn truncation_is_safe_at_every_offset() {
    let mut rng = StdRng::seed_from_u64(0x7c4ac);
    for _ in 0..64 {
        let req = rand_request(&mut rng);
        let bytes = req.to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                Request::from_bytes(&bytes[..keep]).is_err(),
                "decoding a {keep}-byte prefix of a {}-byte request must fail",
                bytes.len()
            );
        }
    }
    // Same for responses.
    for _ in 0..64 {
        let resp = rand_response(&mut rng);
        let bytes = resp.to_bytes();
        for keep in 0..bytes.len() {
            assert!(Response::from_bytes(&bytes[..keep]).is_err());
        }
    }
}

/// A truncated frame stream is never an error and never yields a frame:
/// the decoder reports "need more" at EVERY cut point, and feeding the
/// missing remainder later completes the stream exactly.
#[test]
fn truncated_frames_resume_cleanly() {
    let mut rng = StdRng::seed_from_u64(0x7211c);
    for _ in 0..64 {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..4))
            .map(|_| rand_bytes(&mut rng, 96))
            .collect();
        let mut wire = BytesMut::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        // Cut somewhere strictly inside the final frame (possibly inside
        // its 4-byte length prefix).
        let last_start = wire.len() - (payloads.last().unwrap().len() + 4);
        let cut = rng.gen_range(last_start..wire.len());

        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(frame) = dec.next_frame().unwrap() {
            got.push(frame.to_vec());
        }
        assert_eq!(got, payloads[..payloads.len() - 1].to_vec());
        assert!(
            dec.pending() > 0 || cut == last_start,
            "a partial frame must be held as pending bytes"
        );
        // Resume: the remainder completes the stream with no loss.
        dec.feed(&wire[cut..]);
        let tail_frame = dec.next_frame().unwrap().expect("final frame");
        assert_eq!(tail_frame.to_vec(), *payloads.last().unwrap());
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }
}

/// Length-prefixed fields are u32-sized, so keys and values far beyond
/// typical sizes must round-trip bit-exactly through the wire format, the
/// framer, and the pipelined parser (boundary sizes included).
#[test]
fn max_length_keys_and_values_roundtrip() {
    let sizes = [0usize, 1, 255, 256, 65_535, 65_536, 1 << 20];
    for (i, &ks) in sizes.iter().enumerate() {
        // Value size walks the sizes in reverse so every pairing differs.
        let vs = sizes[sizes.len() - 1 - i];
        let key: Vec<u8> = (0..ks).map(|j| (j % 251) as u8).collect();
        let value: Vec<u8> = (0..vs).map(|j| (j % 247) as u8).collect();
        let req = Request {
            id: RequestId::compose(ClientId(9), i as u32),
            table: "t".into(),
            op: Op::Put {
                key: Key::from(key),
                value: Value::from(value),
            },
            level: ConsistencyLevel::Default,
            deadline: Instant::ZERO,
        };
        let bytes = req.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        assert_eq!(back, req, "key={ks}B value={vs}B");
        assert_eq!(back.to_bytes(), bytes);

        // Through the framer + parser as one oversized pipelined message.
        let mut parser = BinaryParser::new();
        let mut wire = BytesMut::new();
        parser.encode_request(&req, &mut wire);
        let mut server = BinaryParser::new();
        // Feed in coarse chunks so large frames cross many feeds.
        let mut got = Vec::new();
        for piece in wire.chunks(8192) {
            server.feed(piece);
            while let Some(r) = server.next_request().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, vec![req]);
    }
}

/// Exhaustive split-point corpus for the zero-copy decoder's frozen/tail
/// boundary: two frames, fed in three pieces cut at every (i, j) pair,
/// with a drain between feeds so the first cut seals a frozen region and
/// the later cuts land in the tail. Catches off-by-ones in the header
/// peek across the boundary and in the merge path.
#[test]
fn frame_decoder_split_corpus_covers_frozen_tail_boundary() {
    let payloads = [b"hello".to_vec(), (0u8..=200).collect::<Vec<u8>>()];
    let mut wire = BytesMut::new();
    for p in &payloads {
        encode_frame(p, &mut wire);
    }
    let n = wire.len();
    for i in 0..=n {
        for j in i..=n {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in [&wire[..i], &wire[i..j], &wire[j..]] {
                dec.feed(piece);
                // Draining between feeds freezes the undecoded remainder,
                // so the next feed's bytes straddle the boundary.
                while let Some(frame) = dec.next_frame().unwrap() {
                    got.push(frame.to_vec());
                }
            }
            assert_eq!(got, payloads, "split at ({i}, {j})");
            assert_eq!(dec.pending(), 0, "split at ({i}, {j})");
        }
    }
}
