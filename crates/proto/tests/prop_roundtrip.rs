//! Property-style tests: every wire encoding round-trips, under any payload
//! and any packetization.
//!
//! Implemented as seeded exhaustive-random loops (deterministic across
//! runs) rather than a proptest dependency; each case is generated from a
//! fixed-seed `StdRng` so failures reproduce exactly.

use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::frame::{encode_frame, FrameDecoder};
use bespokv_proto::messages::{LogEntry, NetMsg, ReplMsg};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_proto::wire::{Decode, Encode};
use bespokv_types::{
    ClientId, ConsistencyLevel, Key, KvError, NodeId, RequestId, ShardId, Value,
};
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rand_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

fn rand_name(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn rand_key(rng: &mut StdRng) -> Key {
    Key::from(rand_bytes(rng, 64))
}

fn rand_value(rng: &mut StdRng) -> Value {
    Value::from(rand_bytes(rng, 256))
}

fn rand_rid(rng: &mut StdRng) -> RequestId {
    RequestId::compose(ClientId(rng.gen::<u32>()), rng.gen::<u32>())
}

fn rand_level(rng: &mut StdRng) -> ConsistencyLevel {
    match rng.gen_range(0..3) {
        0 => ConsistencyLevel::Default,
        1 => ConsistencyLevel::Strong,
        _ => ConsistencyLevel::Eventual,
    }
}

/// Covers every `Op` variant.
fn rand_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..6) {
        0 => Op::Put {
            key: rand_key(rng),
            value: rand_value(rng),
        },
        1 => Op::Get { key: rand_key(rng) },
        2 => Op::Del { key: rand_key(rng) },
        3 => Op::Scan {
            start: rand_key(rng),
            end: rand_key(rng),
            limit: rng.gen::<u32>(),
        },
        4 => Op::CreateTable {
            name: rand_name(rng, 16),
        },
        _ => Op::DeleteTable {
            name: rand_name(rng, 16),
        },
    }
}

fn rand_request(rng: &mut StdRng) -> Request {
    Request {
        id: rand_rid(rng),
        table: rand_name(rng, 8),
        op: rand_op(rng),
        level: rand_level(rng),
    }
}

fn rand_error(rng: &mut StdRng) -> KvError {
    match rng.gen_range(0..6) {
        0 => KvError::NotFound,
        1 => KvError::Timeout,
        2 => KvError::LockContended,
        3 => {
            let len = rng.gen_range(0..32);
            KvError::Io(
                (0..len)
                    .map(|_| (b' ' + rng.gen_range(0..95u8)) as char)
                    .collect(),
            )
        }
        4 => KvError::WrongNode {
            node: NodeId(rng.gen::<u32>()),
            hint: if rng.gen::<bool>() {
                Some(NodeId(rng.gen::<u32>()))
            } else {
                None
            },
        },
        _ => KvError::Unavailable(ShardId(rng.gen::<u32>())),
    }
}

fn rand_body(rng: &mut StdRng) -> RespBody {
    match rng.gen_range(0..3) {
        0 => RespBody::Done,
        1 => RespBody::Value(bespokv_types::VersionedValue::new(
            rand_value(rng),
            rng.gen::<u64>(),
        )),
        _ => RespBody::Entries(
            (0..rng.gen_range(0..8))
                .map(|_| {
                    (
                        rand_key(rng),
                        bespokv_types::VersionedValue::new(rand_value(rng), rng.gen::<u64>()),
                    )
                })
                .collect(),
        ),
    }
}

fn rand_response(rng: &mut StdRng) -> Response {
    Response {
        id: rand_rid(rng),
        result: if rng.gen::<bool>() {
            Ok(rand_body(rng))
        } else {
            Err(rand_error(rng))
        },
    }
}

fn rand_entry(rng: &mut StdRng) -> LogEntry {
    LogEntry {
        table: rand_name(rng, 8),
        key: rand_key(rng),
        value: if rng.gen::<bool>() {
            Some(rand_value(rng))
        } else {
            None
        },
        version: rng.gen::<u64>(),
    }
}

#[test]
fn request_wire_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5ec0de);
    for _ in 0..CASES {
        let req = rand_request(&mut rng);
        let bytes = req.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);
        // Re-encoding the decoded value must be byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }
}

#[test]
fn response_wire_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xa11ce);
    for _ in 0..CASES {
        let resp = rand_response(&mut rng);
        let bytes = resp.to_bytes();
        let back = Response::from_bytes(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.to_bytes(), bytes);
    }
}

#[test]
fn repl_msg_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x2e91);
    for _ in 0..CASES {
        let entries: Vec<LogEntry> = (0..rng.gen_range(0..8))
            .map(|_| rand_entry(&mut rng))
            .collect();
        let msg = NetMsg::Repl(ReplMsg::PropBatch {
            shard: ShardId(rng.gen::<u32>()),
            epoch: 1,
            first_seq: rng.gen::<u64>(),
            floor: rng.gen::<u64>(),
            entries,
        });
        let bytes = msg.to_bytes();
        assert_eq!(NetMsg::from_bytes(&bytes).unwrap(), msg);
    }
}

/// The frame decoder reassembles identically regardless of how the byte
/// stream is chopped into delivery chunks.
#[test]
fn framing_is_chunking_invariant() {
    let mut rng = StdRng::seed_from_u64(0xf4a3e);
    for _ in 0..CASES {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..6))
            .map(|_| rand_bytes(&mut rng, 128))
            .collect();
        let mut wire = BytesMut::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < wire.len() {
            let step = rng.gen_range(1..64usize).min(wire.len() - pos);
            dec.feed(&wire[pos..pos + step]);
            pos += step;
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.pending(), 0);
    }
}

/// The binary parser round-trips pipelined request batches under any
/// chunking.
#[test]
fn binary_parser_pipelining() {
    let mut rng = StdRng::seed_from_u64(0xb17e5);
    for _ in 0..CASES {
        let reqs: Vec<Request> = (0..rng.gen_range(1..8))
            .map(|_| rand_request(&mut rng))
            .collect();
        let chunk = rng.gen_range(1..96usize);
        let mut client = BinaryParser::new();
        let mut wire = BytesMut::new();
        for r in &reqs {
            client.encode_request(r, &mut wire);
        }
        let mut server = BinaryParser::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            server.feed(piece);
            while let Some(r) = server.next_request().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, reqs);
    }
}

/// Truncating an encoded request at ANY offset never panics and never
/// yields a bogus success for a strict prefix (the format is
/// self-delimiting).
#[test]
fn truncation_is_safe_at_every_offset() {
    let mut rng = StdRng::seed_from_u64(0x7c4ac);
    for _ in 0..64 {
        let req = rand_request(&mut rng);
        let bytes = req.to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                Request::from_bytes(&bytes[..keep]).is_err(),
                "decoding a {keep}-byte prefix of a {}-byte request must fail",
                bytes.len()
            );
        }
    }
    // Same for responses.
    for _ in 0..64 {
        let resp = rand_response(&mut rng);
        let bytes = resp.to_bytes();
        for keep in 0..bytes.len() {
            assert!(Response::from_bytes(&bytes[..keep]).is_err());
        }
    }
}
