//! Property tests: every wire encoding round-trips, under any payload and
//! any packetization.

use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::frame::{encode_frame, FrameDecoder};
use bespokv_proto::messages::{LogEntry, NetMsg, ReplMsg};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_proto::wire::{Decode, Encode};
use bespokv_types::{
    ClientId, ConsistencyLevel, Key, KvError, NodeId, RequestId, ShardId, Value,
};
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Key::from)
}

fn arb_value() -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u8>(), 0..256).prop_map(Value::from)
}

fn arb_rid() -> impl Strategy<Value = RequestId> {
    (any::<u32>(), any::<u32>()).prop_map(|(c, s)| RequestId::compose(ClientId(c), s))
}

fn arb_level() -> impl Strategy<Value = ConsistencyLevel> {
    prop_oneof![
        Just(ConsistencyLevel::Default),
        Just(ConsistencyLevel::Strong),
        Just(ConsistencyLevel::Eventual),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), arb_value()).prop_map(|(key, value)| Op::Put { key, value }),
        arb_key().prop_map(|key| Op::Get { key }),
        arb_key().prop_map(|key| Op::Del { key }),
        (arb_key(), arb_key(), any::<u32>())
            .prop_map(|(start, end, limit)| Op::Scan { start, end, limit }),
        "[a-z]{0,16}".prop_map(|name| Op::CreateTable { name }),
        "[a-z]{0,16}".prop_map(|name| Op::DeleteTable { name }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (arb_rid(), "[a-z]{0,8}", arb_op(), arb_level()).prop_map(|(id, table, op, level)| Request {
        id,
        table,
        op,
        level,
    })
}

fn arb_error() -> impl Strategy<Value = KvError> {
    prop_oneof![
        Just(KvError::NotFound),
        Just(KvError::Timeout),
        Just(KvError::LockContended),
        "[ -~]{0,32}".prop_map(KvError::Io),
        (any::<u32>(), proptest::option::of(any::<u32>())).prop_map(|(n, h)| {
            KvError::WrongNode {
                node: NodeId(n),
                hint: h.map(NodeId),
            }
        }),
        any::<u32>().prop_map(|s| KvError::Unavailable(ShardId(s))),
    ]
}

fn arb_body() -> impl Strategy<Value = RespBody> {
    prop_oneof![
        Just(RespBody::Done),
        (arb_value(), any::<u64>()).prop_map(|(v, ver)| {
            RespBody::Value(bespokv_types::VersionedValue::new(v, ver))
        }),
        proptest::collection::vec((arb_key(), arb_value(), any::<u64>()), 0..8).prop_map(|es| {
            RespBody::Entries(
                es.into_iter()
                    .map(|(k, v, ver)| (k, bespokv_types::VersionedValue::new(v, ver)))
                    .collect(),
            )
        }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        arb_rid(),
        prop_oneof![arb_body().prop_map(Ok), arb_error().prop_map(Err)],
    )
        .prop_map(|(id, result)| Response { id, result })
}

fn arb_entry() -> impl Strategy<Value = LogEntry> {
    (
        "[a-z]{0,8}",
        arb_key(),
        proptest::option::of(arb_value()),
        any::<u64>(),
    )
        .prop_map(|(table, key, value, version)| LogEntry {
            table,
            key,
            value,
            version,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_wire_roundtrip(req in arb_request()) {
        let bytes = req.to_bytes();
        prop_assert_eq!(Request::from_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn response_wire_roundtrip(resp in arb_response()) {
        let bytes = resp.to_bytes();
        prop_assert_eq!(Response::from_bytes(&bytes).unwrap(), resp);
    }

    #[test]
    fn repl_msg_roundtrip(
        entries in proptest::collection::vec(arb_entry(), 0..8),
        shard in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let msg = NetMsg::Repl(ReplMsg::PropBatch {
            shard: ShardId(shard),
            epoch: 1,
            first_seq: seq,
            entries,
        });
        let bytes = msg.to_bytes();
        prop_assert_eq!(NetMsg::from_bytes(&bytes).unwrap(), msg);
    }

    /// The frame decoder reassembles identically regardless of how the
    /// byte stream is chopped into delivery chunks.
    #[test]
    fn framing_is_chunking_invariant(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128), 1..6),
        cuts in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut wire = BytesMut::new();
        for p in &payloads {
            encode_frame(p, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut cuts = cuts.into_iter();
        while pos < wire.len() {
            let step = cuts.next().unwrap_or(13).min(wire.len() - pos);
            dec.feed(&wire[pos..pos + step]);
            pos += step;
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        prop_assert_eq!(got, payloads);
    }

    /// The binary parser round-trips pipelined request batches under any
    /// chunking.
    #[test]
    fn binary_parser_pipelining(
        reqs in proptest::collection::vec(arb_request(), 1..8),
        chunk in 1usize..96,
    ) {
        let mut client = BinaryParser::new();
        let mut wire = BytesMut::new();
        for r in &reqs {
            client.encode_request(r, &mut wire);
        }
        let mut server = BinaryParser::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            server.feed(piece);
            while let Some(r) = server.next_request().unwrap() {
                got.push(r);
            }
        }
        prop_assert_eq!(got, reqs);
    }

    /// Truncating any encoded request never panics and never yields a
    /// bogus success for a strict prefix.
    #[test]
    fn truncation_is_safe(req in arb_request(), keep in 0usize..64) {
        let bytes = req.to_bytes();
        if keep < bytes.len() {
            // Decoding a strict prefix must error (self-delimiting format).
            prop_assert!(Request::from_bytes(&bytes[..keep]).is_err());
        }
    }
}
