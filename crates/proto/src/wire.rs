//! Binary wire encoding.
//!
//! A compact, hand-rolled, deterministic binary format (the paper's
//! "bespoKV-defined protocol" option, which it implements with Protocol
//! Buffers; we implement an equivalent from scratch). Integers are
//! little-endian fixed width; byte strings and collections are
//! length-prefixed with `u32`. Every message type implements [`Encode`] and
//! [`Decode`], and the `wire_struct!`/`wire_enum!` macros generate the
//! mechanical field-by-field impls.

use bespokv_types::{
    ids::{ClientId, NodeId, RequestId, ShardId},
    Duration, Instant, Key, KvError, Value,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced while decoding.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// A malformed or truncated wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for KvError {
    fn from(e: DecodeError) -> Self {
        KvError::Protocol(e.0)
    }
}

/// Serializes `self` onto a growable buffer.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Exact number of bytes [`Encode::encode`] will append.
    ///
    /// Used to size buffers up front so the hot encode path never
    /// reallocates mid-message.
    fn encoded_len(&self) -> usize;

    /// Convenience: encodes into a fresh, exactly-sized buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Input accepted by [`Decode::from_bytes`]: anything convertible into the
/// decoder's working [`Bytes`] buffer.
///
/// This lives here, on repo-owned code, rather than as extra `From` impls
/// on the vendored `bytes` shim: every impl below uses only the real
/// `bytes` 1.x API (`clone`, `copy_from_slice`, `From<Vec<u8>>`), so the
/// workspace compiles unchanged against the upstream crate.
pub trait IntoWireBytes {
    /// Converts into an owned [`Bytes`] buffer.
    fn into_wire_bytes(self) -> Bytes;
}

impl IntoWireBytes for Bytes {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        self
    }
}

/// Zero-copy: a refcount bump; decoded `Bytes` payloads are views into the
/// caller's buffer.
impl IntoWireBytes for &Bytes {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        self.clone()
    }
}

impl IntoWireBytes for Vec<u8> {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        Bytes::from(self)
    }
}

impl IntoWireBytes for &BytesMut {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        Bytes::copy_from_slice(self)
    }
}

impl IntoWireBytes for &[u8] {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        Bytes::copy_from_slice(self)
    }
}

impl<const N: usize> IntoWireBytes for &[u8; N] {
    #[inline]
    fn into_wire_bytes(self) -> Bytes {
        Bytes::copy_from_slice(self)
    }
}

/// Deserializes a value by consuming bytes from the front of `buf`.
pub trait Decode: Sized {
    /// Consumes and decodes one value.
    fn decode(buf: &mut Bytes) -> DecodeResult<Self>;

    /// Convenience: decodes one value, requiring full consumption.
    ///
    /// Passing `Bytes` or `&Bytes` (e.g. a frame popped from a
    /// `FrameDecoder`) is zero-copy: decoded `Bytes` payloads are
    /// refcounted views into the caller's buffer. Passing a plain `&[u8]`
    /// copies once, unavoidably.
    fn from_bytes(bytes: impl IntoWireBytes) -> DecodeResult<Self> {
        let mut b = bytes.into_wire_bytes();
        let v = Self::decode(&mut b)?;
        if !b.is_empty() {
            return Err(DecodeError(format!("{} trailing bytes", b.len())));
        }
        Ok(v)
    }
}

#[inline]
fn need(buf: &Bytes, n: usize, what: &str) -> DecodeResult<()> {
    if buf.remaining() < n {
        Err(DecodeError(format!(
            "truncated {what}: need {n}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

macro_rules! int_wire {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
                need(buf, std::mem::size_of::<$ty>(), stringify!($ty))?;
                Ok(buf.$get())
            }
        }
    };
}

int_wire!(u8, put_u8, get_u8);
int_wire!(u16, put_u16_le, get_u16_le);
int_wire!(u32, put_u32_le, get_u32_le);
int_wire!(u64, put_u64_le, get_u64_le);
int_wire!(i64, put_i64_le, get_i64_le);

impl Encode for bool {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    #[inline]
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(DecodeError(format!("invalid bool byte {n}"))),
        }
    }
}

impl Encode for f64 {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    #[inline]
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        need(buf, 8, "f64")?;
        Ok(buf.get_f64_le())
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "bytes body")?;
        Ok(buf.split_to(len))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    #[inline]
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        let b = Bytes::decode(buf)?;
        // Validate in place, then allocate the String directly — no
        // intermediate Vec.
        std::str::from_utf8(&b)
            .map(str::to_owned)
            .map_err(|e| DecodeError(format!("invalid utf8: {e}")))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            n => Err(DecodeError(format!("invalid option tag {n}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        let len = u32::decode(buf)? as usize;
        // Guard against absurd lengths from corrupt frames: each element
        // takes at least one byte on the wire.
        need(buf, len, "vec elements")?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

macro_rules! newtype_wire {
    ($ty:ty, $inner:ty) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                self.0.encode(buf);
            }
            #[inline]
            fn encoded_len(&self) -> usize {
                self.0.encoded_len()
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut Bytes) -> DecodeResult<Self> {
                Ok(Self(<$inner>::decode(buf)?))
            }
        }
    };
}

newtype_wire!(NodeId, u32);
newtype_wire!(ShardId, u32);
newtype_wire!(ClientId, u32);
newtype_wire!(RequestId, u64);
newtype_wire!(Key, Bytes);
newtype_wire!(Value, Bytes);
newtype_wire!(Instant, u64);
newtype_wire!(Duration, u64);

/// Generates [`Encode`]/[`Decode`] for a struct with named fields.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::wire::Encode for $ty {
            fn encode(&self, buf: &mut bytes::BytesMut) {
                $( $crate::wire::Encode::encode(&self.$field, buf); )*
            }
            fn encoded_len(&self) -> usize {
                0 $( + $crate::wire::Encode::encoded_len(&self.$field) )*
            }
        }
        impl $crate::wire::Decode for $ty {
            fn decode(buf: &mut bytes::Bytes) -> $crate::wire::DecodeResult<Self> {
                Ok($ty { $( $field: $crate::wire::Decode::decode(buf)?, )* })
            }
        }
    };
}

/// Generates [`Encode`]/[`Decode`] for an enum whose variants carry either
/// nothing, named-struct fields, or a single tuple payload.
#[macro_export]
macro_rules! wire_enum {
    ($ty:ident { $($tag:literal => $variant:ident $({ $($field:ident),* $(,)? })? $(( $tuple:ident ))? ),* $(,)? }) => {
        impl $crate::wire::Encode for $ty {
            fn encode(&self, buf: &mut bytes::BytesMut) {
                match self {
                    $(
                        $ty::$variant $({ $($field),* })? $(( $tuple ))? => {
                            $crate::wire::Encode::encode(&($tag as u8), buf);
                            $( $( $crate::wire::Encode::encode($field, buf); )* )?
                            $( $crate::wire::Encode::encode($tuple, buf); )?
                        }
                    )*
                }
            }
            fn encoded_len(&self) -> usize {
                match self {
                    $(
                        $ty::$variant $({ $($field),* })? $(( $tuple ))? => {
                            1usize
                            $( $( + $crate::wire::Encode::encoded_len($field) )* )?
                            $( + $crate::wire::Encode::encoded_len($tuple) )?
                        }
                    )*
                }
            }
        }
        impl $crate::wire::Decode for $ty {
            fn decode(buf: &mut bytes::Bytes) -> $crate::wire::DecodeResult<Self> {
                let tag = <u8 as $crate::wire::Decode>::decode(buf)?;
                match tag {
                    $(
                        $tag => Ok($ty::$variant $({ $($field: $crate::wire::Decode::decode(buf)?),* })? $(( {
                            let $tuple = $crate::wire::Decode::decode(buf)?;
                            $tuple
                        } ))?),
                    )*
                    other => Err($crate::wire::DecodeError(format!(
                        concat!("invalid ", stringify!($ty), " tag {}"), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(
            bytes.len(),
            v.encoded_len(),
            "encoded_len must be exact for {v:?}"
        );
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(true);
        roundtrip(3.5f64);
        roundtrip("hello".to_string());
        roundtrip(Bytes::from_static(b"\x00\x01\x02"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(5u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((Key::from("k"), Value::from("v")));
        roundtrip(vec![(1u32, "a".to_string()), (2, "b".to_string())]);
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(NodeId(7));
        roundtrip(RequestId::compose(ClientId(1), 2));
        roundtrip(ShardId(0));
    }

    #[test]
    fn truncated_input_errors() {
        assert!(u64::from_bytes(&[1, 2, 3]).is_err());
        assert!(String::from_bytes(&[4, 0, 0, 0, b'a']).is_err());
        // Vec claiming a billion elements on a short buffer must not OOM.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1_000_000_000);
        assert!(Vec::<u64>::from_bytes(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        5u32.encode(&mut buf);
        buf.put_u8(0xff);
        assert!(u32::from_bytes(&buf).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    /// Whether `inner` is a sub-slice of `outer`'s memory (no heap copy).
    fn is_view_into(inner: &[u8], outer: &[u8]) -> bool {
        let (ip, op) = (inner.as_ptr() as usize, outer.as_ptr() as usize);
        ip >= op && ip + inner.len() <= op + outer.len()
    }

    #[test]
    fn decode_from_bytes_is_zero_copy() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let encoded = payload.to_bytes();
        // &Bytes input: the decoded payload must be a refcounted view into
        // the encoded buffer, not a fresh allocation.
        let decoded = Bytes::from_bytes(&encoded).unwrap();
        assert_eq!(decoded, payload);
        assert!(
            is_view_into(&decoded, &encoded),
            "Bytes::decode copied the payload"
        );
        // Same through the newtype wrappers used on the hot path.
        let kv = (Key::from(vec![1u8; 64]), Value::from(vec![2u8; 256]));
        let enc = kv.to_bytes();
        let back = <(Key, Value)>::from_bytes(&enc).unwrap();
        assert!(is_view_into(back.0.as_bytes(), &enc));
        assert!(is_view_into(back.1.as_bytes(), &enc));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&buf).is_err());
    }
}
