//! Protocol parser abstraction.
//!
//! The paper's controlets support two options for understanding application
//! protocols: (1) the bespoKV-defined (binary) protocol, preferred for new
//! datalets, and (2) pluggable parsers for existing datalets' own protocols
//! (e.g. Redis or SSDB text protocols). [`ProtocolParser`] captures the
//! full-duplex contract; [`BinaryParser`] is option 1, and the parsers in
//! [`crate::text`] are option 2.

use crate::client::{Request, Response};
use crate::frame::{FrameDecoder, MAX_FRAME};
use crate::wire::{Decode, Encode};
use bespokv_types::{KvError, KvResult};
use bytes::{BufMut, BytesMut};

/// Incremental, full-duplex protocol codec for one connection.
///
/// The server side uses `feed` + `next_request` and `encode_response`;
/// the client side (e.g. a controlet talking to a text-protocol datalet)
/// uses `encode_request` and `feed` + `next_response`.
pub trait ProtocolParser: Send {
    /// Short name, for logs and config files.
    fn name(&self) -> &'static str;

    /// Feeds raw bytes received from the peer.
    fn feed(&mut self, bytes: &[u8]);

    /// Pops the next fully parsed request, if any.
    fn next_request(&mut self) -> KvResult<Option<Request>>;

    /// Pops the next fully parsed response, if any.
    fn next_response(&mut self) -> KvResult<Option<Response>>;

    /// Serializes a request for the peer.
    fn encode_request(&mut self, req: &Request, out: &mut BytesMut);

    /// Serializes a response for the peer.
    fn encode_response(&mut self, resp: &Response, out: &mut BytesMut);
}

/// The bespoKV-native binary protocol: length-framed [`crate::wire`]
/// encodings. Fast path; fully self-describing (ids, tables, consistency
/// levels all survive the trip).
#[derive(Debug, Default)]
pub struct BinaryParser {
    frames: FrameDecoder,
}

impl BinaryParser {
    /// Creates a parser with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProtocolParser for BinaryParser {
    fn name(&self) -> &'static str {
        "bespokv-binary"
    }

    fn feed(&mut self, bytes: &[u8]) {
        self.frames.feed(bytes);
    }

    fn next_request(&mut self) -> KvResult<Option<Request>> {
        match self.frames.next_frame() {
            // `frame` is a refcounted view into the decoder's buffer, and
            // `from_bytes` decodes payloads as sub-views of it: no copies
            // between the socket read and the Request's Key/Value bytes.
            Ok(Some(frame)) => Ok(Some(Request::from_bytes(frame)?)),
            Ok(None) => Ok(None),
            Err(e) => Err(KvError::Protocol(e.to_string())),
        }
    }

    fn next_response(&mut self) -> KvResult<Option<Response>> {
        match self.frames.next_frame() {
            Ok(Some(frame)) => Ok(Some(Response::from_bytes(frame)?)),
            Ok(None) => Ok(None),
            Err(e) => Err(KvError::Protocol(e.to_string())),
        }
    }

    fn encode_request(&mut self, req: &Request, out: &mut BytesMut) {
        encode_framed(req, out);
    }

    fn encode_response(&mut self, resp: &Response, out: &mut BytesMut) {
        encode_framed(resp, out);
    }
}

/// Frames a wire message directly into `out`: reserve once, write the length
/// prefix from [`Encode::encoded_len`], encode in place. No intermediate
/// per-message buffer.
fn encode_framed<T: Encode>(msg: &T, out: &mut BytesMut) {
    let body_len = msg.encoded_len();
    debug_assert!(body_len <= MAX_FRAME);
    out.reserve(4 + body_len);
    out.put_u32_le(body_len as u32);
    let before = out.len();
    msg.encode(out);
    debug_assert_eq!(out.len() - before, body_len, "encoded_len out of sync");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Op, RespBody};
    use crate::frame::encode_frame;
    use bespokv_types::{ClientId, Key, RequestId, Value, VersionedValue};

    fn rid(seq: u32) -> RequestId {
        RequestId::compose(ClientId(1), seq)
    }

    #[test]
    fn binary_request_roundtrip_through_parser() {
        let mut server = BinaryParser::new();
        let mut client = BinaryParser::new();
        let mut wire = BytesMut::new();
        let reqs = vec![
            Request::new(
                rid(0),
                Op::Put {
                    key: Key::from("a"),
                    value: Value::from("1"),
                },
            ),
            Request::new(rid(1), Op::Get { key: Key::from("a") }),
        ];
        for r in &reqs {
            client.encode_request(r, &mut wire);
        }
        // Deliver in odd-sized chunks to exercise incremental parsing.
        let split = wire.len() / 3;
        let mut got = Vec::new();
        server.feed(&wire[..split]);
        while let Some(r) = server.next_request().unwrap() {
            got.push(r);
        }
        server.feed(&wire[split..]);
        while let Some(r) = server.next_request().unwrap() {
            got.push(r);
        }
        assert_eq!(got, reqs);
    }

    #[test]
    fn binary_response_roundtrip_through_parser() {
        let mut server = BinaryParser::new();
        let mut client = BinaryParser::new();
        let mut wire = BytesMut::new();
        let resp = Response::ok(
            rid(9),
            RespBody::Value(VersionedValue::new(Value::from("v"), 3)),
        );
        server.encode_response(&resp, &mut wire);
        client.feed(&wire);
        assert_eq!(client.next_response().unwrap(), Some(resp));
        assert_eq!(client.next_response().unwrap(), None);
    }

    #[test]
    fn decoded_payloads_alias_the_popped_frame() {
        use crate::frame::FrameDecoder;
        let req = Request::new(
            rid(5),
            Op::Put {
                key: Key::from(vec![b'k'; 64]),
                value: Value::from(vec![b'v'; 4096]),
            },
        );
        let mut wire = BytesMut::new();
        BinaryParser::new().encode_request(&req, &mut wire);
        let mut frames = FrameDecoder::new();
        frames.feed(&wire);
        let frame = frames.next_frame().unwrap().unwrap();
        let got = Request::from_bytes(&frame).unwrap();
        let (fp, fl) = (frame.as_ptr() as usize, frame.len());
        let Op::Put { key, value } = &got.op else {
            panic!("wrong op");
        };
        for payload in [key.as_bytes(), value.as_bytes()] {
            let p = payload.as_ptr() as usize;
            assert!(
                p >= fp && p + payload.len() <= fp + fl,
                "decoded payload was copied out of the frame buffer"
            );
        }
    }

    #[test]
    fn corrupt_frame_surfaces_protocol_error() {
        let mut p = BinaryParser::new();
        // A valid frame header with garbage payload.
        let mut wire = BytesMut::new();
        encode_frame(&[0xFF; 3], &mut wire);
        p.feed(&wire);
        assert!(p.next_request().is_err());
    }
}
