//! Length-prefixed framing for stream transports (TCP).
//!
//! Each frame is `u32 little-endian length` followed by that many payload
//! bytes. [`FrameDecoder`] is an incremental decoder: feed it arbitrary
//! chunks as they arrive from a socket and pop complete frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame size; larger frames indicate corruption or abuse.
pub const MAX_FRAME: usize = 64 << 20; // 64 MiB

/// Appends one framed payload to `out`.
pub fn encode_frame(payload: &[u8], out: &mut BytesMut) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.reserve(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
}

/// Incremental frame decoder.
///
/// Bytes enter once through [`FrameDecoder::feed`] (the unavoidable
/// socket-to-buffer copy) and are served back as O(1) refcounted [`Bytes`]
/// views — popping a frame never copies its payload. Internally the decoder
/// keeps two regions: `frozen`, an immutable shared buffer frames are carved
/// out of, and `tail`, the growable accumulator new chunks land in. When
/// `frozen` runs out mid-frame the tail is frozen (a move, not a copy) and
/// at most one partial frame prefix is re-staged.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Immutable region currently being carved into frames.
    frozen: Bytes,
    /// Bytes received after `frozen` was sealed.
    tail: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Reserve up front: one allocation per read batch, and `reserve`
        // reclaims any consumed prefix so long-lived connections don't creep.
        self.tail.reserve(chunk.len());
        self.tail.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// The returned [`Bytes`] is a zero-copy view into the decoder's shared
    /// buffer. Returns `Err` if the stream is corrupt (oversized frame) —
    /// the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        loop {
            if self.frozen.len() >= 4 {
                let len = u32::from_le_bytes([
                    self.frozen[0],
                    self.frozen[1],
                    self.frozen[2],
                    self.frozen[3],
                ]) as usize;
                if len > MAX_FRAME {
                    return Err(FrameError::TooLarge(len));
                }
                if self.frozen.len() >= 4 + len {
                    self.frozen.advance(4);
                    return Ok(Some(self.frozen.split_to(len)));
                }
            }
            // `frozen` holds less than one frame. Pull in the tail: the
            // common case (frozen fully consumed) is a pure move; a partial
            // frame prefix is copied at most once per frame.
            if self.tail.is_empty() {
                return Ok(None);
            }
            if self.frozen.is_empty() {
                self.frozen = std::mem::take(&mut self.tail).freeze();
            } else {
                let mut merged = BytesMut::with_capacity(self.frozen.len() + self.tail.len());
                merged.extend_from_slice(&self.frozen);
                merged.extend_from_slice(&self.tail);
                self.tail.clear();
                self.frozen = merged.freeze();
            }
        }
    }

    /// Bytes currently buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.frozen.len() + self.tail.len()
    }
}

/// Framing-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut out = BytesMut::new();
        encode_frame(b"hello", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn handles_partial_delivery() {
        let mut out = BytesMut::new();
        encode_frame(b"abcdef", &mut out);
        let mut dec = FrameDecoder::new();
        // Deliver byte by byte; frame must only appear at the end.
        for (i, b) in out.iter().enumerate() {
            dec.feed(&[*b]);
            let fr = dec.next_frame().unwrap();
            if i + 1 < out.len() {
                assert!(fr.is_none());
            } else {
                assert_eq!(fr.unwrap(), Bytes::from_static(b"abcdef"));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut out = BytesMut::new();
        encode_frame(b"one", &mut out);
        encode_frame(b"two", &mut out);
        encode_frame(b"", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"one"[..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"two"[..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b""[..]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::TooLarge(_))
        ));
    }
}
