//! Length-prefixed framing for stream transports (TCP).
//!
//! Each frame is `u32 little-endian length` followed by that many payload
//! bytes. [`FrameDecoder`] is an incremental decoder: feed it arbitrary
//! chunks as they arrive from a socket and pop complete frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame size; larger frames indicate corruption or abuse.
pub const MAX_FRAME: usize = 64 << 20; // 64 MiB

/// Appends one framed payload to `out`.
pub fn encode_frame(payload: &[u8], out: &mut BytesMut) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.reserve(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
}

/// Incremental frame decoder.
///
/// Bytes enter once through [`FrameDecoder::feed`] (the unavoidable
/// socket-to-buffer copy) and are served back as O(1) refcounted [`Bytes`]
/// views — popping a frame never copies its payload. Internally the decoder
/// keeps two regions: `frozen`, an immutable shared buffer frames are carved
/// out of, and `tail`, the growable accumulator new chunks land in. The
/// frame length is peeked across both regions, so a frame trickling in over
/// many reads costs nothing until it is complete; only a complete frame
/// straddling the boundary triggers a merge (a pure move when `frozen` is
/// drained, otherwise one copy per such frame).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Immutable region currently being carved into frames.
    frozen: Bytes,
    /// Bytes received after `frozen` was sealed.
    tail: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Reserve up front: one allocation per read batch, and `reserve`
        // reclaims any consumed prefix so long-lived connections don't creep.
        self.tail.reserve(chunk.len());
        self.tail.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// The returned [`Bytes`] is a zero-copy view into the decoder's shared
    /// buffer. Returns `Err` if the stream is corrupt (oversized frame) —
    /// the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        loop {
            let frozen_len = self.frozen.len();
            let total = frozen_len + self.tail.len();
            if total < 4 {
                return Ok(None);
            }
            // Peek the length prefix without merging, even when it straddles
            // the frozen/tail boundary — an incomplete frame must cost no
            // copies no matter how many reads deliver it.
            let mut hdr = [0u8; 4];
            for (i, b) in hdr.iter_mut().enumerate() {
                *b = if i < frozen_len {
                    self.frozen[i]
                } else {
                    self.tail[i - frozen_len]
                };
            }
            let len = u32::from_le_bytes(hdr) as usize;
            if len > MAX_FRAME {
                return Err(FrameError::TooLarge(len));
            }
            let needed = 4 + len;
            if total < needed {
                return Ok(None);
            }
            if frozen_len >= needed {
                self.frozen.advance(4);
                return Ok(Some(self.frozen.split_to(len)));
            }
            // A complete frame straddles the boundary. Pull in the tail: a
            // pure move when frozen is drained, otherwise one merge copy —
            // the frame is carved on the next loop iteration, so this runs
            // at most once per frame.
            if self.frozen.is_empty() {
                self.frozen = std::mem::take(&mut self.tail).freeze();
            } else {
                let mut merged = BytesMut::with_capacity(total);
                merged.extend_from_slice(&self.frozen);
                merged.extend_from_slice(&self.tail);
                self.tail.clear();
                self.frozen = merged.freeze();
            }
        }
    }

    /// Bytes currently buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.frozen.len() + self.tail.len()
    }
}

/// Framing-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut out = BytesMut::new();
        encode_frame(b"hello", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn handles_partial_delivery() {
        let mut out = BytesMut::new();
        encode_frame(b"abcdef", &mut out);
        let mut dec = FrameDecoder::new();
        // Deliver byte by byte; frame must only appear at the end.
        for (i, b) in out.iter().enumerate() {
            dec.feed(&[*b]);
            let fr = dec.next_frame().unwrap();
            if i + 1 < out.len() {
                assert!(fr.is_none());
            } else {
                assert_eq!(fr.unwrap(), Bytes::from_static(b"abcdef"));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut out = BytesMut::new();
        encode_frame(b"one", &mut out);
        encode_frame(b"two", &mut out);
        encode_frame(b"", &mut out);
        let mut dec = FrameDecoder::new();
        dec.feed(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"one"[..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"two"[..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b""[..]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn frame_straddling_frozen_tail_boundary() {
        // Carve frame one, leaving part of frame two's header in `frozen`,
        // then trickle the rest in; the decoder must peek the length across
        // both regions and produce the frame only once it is complete.
        let mut one = BytesMut::new();
        encode_frame(b"first", &mut one);
        let mut two = BytesMut::new();
        encode_frame(&b"x".repeat(1000), &mut two);
        let mut dec = FrameDecoder::new();
        let mut chunk = one.to_vec();
        chunk.extend_from_slice(&two[..2]); // 2 of frame two's 4 header bytes
        dec.feed(&chunk);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"first"[..]);
        for piece in two[2..].chunks(100) {
            assert_eq!(dec.next_frame().unwrap(), None);
            dec.feed(piece);
        }
        assert_eq!(dec.next_frame().unwrap().unwrap(), &b"x".repeat(1000)[..]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn incomplete_large_frame_buffers_without_merging() {
        // A slow peer trickling a large frame must not trigger repeated
        // re-copies of the accumulated prefix: while incomplete, bytes stay
        // in `tail` (or `frozen`) untouched.
        let mut out = BytesMut::new();
        encode_frame(&vec![7u8; 1 << 20], &mut out);
        let mut dec = FrameDecoder::new();
        let (head, rest) = out.split_at(8);
        dec.feed(head);
        assert_eq!(dec.next_frame().unwrap(), None);
        for piece in rest.chunks(16 * 1024) {
            dec.feed(piece);
            if dec.pending() < out.len() {
                assert_eq!(dec.next_frame().unwrap(), None);
            }
        }
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.len(), 1 << 20);
        assert!(frame.iter().all(|&b| b == 7));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::TooLarge(_))
        ));
    }
}
