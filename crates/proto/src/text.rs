//! Text protocol parsers for porting existing single-server KV stores.
//!
//! The paper ports Redis and SSDB by supplying parsers for their native
//! protocols instead of the bespoKV binary protocol. We implement both:
//!
//! * [`RespParser`] — the Redis RESP protocol (arrays of bulk strings for
//!   requests; simple strings / bulk strings / errors for responses).
//! * [`SsdbParser`] — the SSDB line protocol (newline-delimited
//!   length-prefixed blocks, terminated by an empty line).
//!
//! Text protocols carry no request ids, tables, or consistency levels, so
//! both parsers synthesize ids from a per-connection counter and rely on the
//! protocols' strict in-order request/response matching, exactly as a real
//! Redis/SSDB client would.

use crate::client::{Op, Request, RespBody, Response};
use crate::parser::ProtocolParser;
use bespokv_types::{
    ClientId, Key, KvError, KvResult, RequestId, Value, VersionedValue,
};
use bytes::{BufMut, BytesMut};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// RESP (Redis) protocol
// ---------------------------------------------------------------------------

/// Redis RESP protocol codec.
///
/// Supported commands: `GET`, `SET`, `DEL`, `SCAN start end limit` (an
/// extension command mirroring our range API), `PING`.
#[derive(Debug)]
pub struct RespParser {
    buf: BytesMut,
    next_seq: u32,
    client: ClientId,
    /// Ops of requests sent/parsed, in order, so responses can be decoded
    /// with the right shape (RESP responses are not self-describing).
    pending_ops: VecDeque<PendingShape>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingShape {
    Value,
    Done,
    Entries,
}

impl RespParser {
    /// Creates a codec; `client` seeds synthesized request ids.
    pub fn new(client: ClientId) -> Self {
        RespParser {
            buf: BytesMut::new(),
            next_seq: 0,
            client,
            pending_ops: VecDeque::new(),
        }
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = RequestId::compose(self.client, self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(1);
        id
    }

    /// Parses one RESP array of bulk strings from the front of `buf`.
    /// Returns the consumed length and the arguments.
    fn parse_array(buf: &[u8]) -> KvResult<Option<(usize, Vec<Vec<u8>>)>> {
        let mut pos = 0usize;
        let (n, used) = match read_int_line(buf, pos, b'*')? {
            Some(v) => v,
            None => return Ok(None),
        };
        pos = used;
        if !(0..=1024).contains(&n) {
            return Err(KvError::Protocol(format!("bad RESP array length {n}")));
        }
        let mut args = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (len, used) = match read_int_line(buf, pos, b'$')? {
                Some(v) => v,
                None => return Ok(None),
            };
            pos = used;
            if len < 0 {
                return Err(KvError::Protocol("nil bulk in request".into()));
            }
            let len = len as usize;
            if buf.len() < pos + len + 2 {
                return Ok(None);
            }
            args.push(buf[pos..pos + len].to_vec());
            if &buf[pos + len..pos + len + 2] != b"\r\n" {
                return Err(KvError::Protocol("missing CRLF after bulk".into()));
            }
            pos += len + 2;
        }
        Ok(Some((pos, args)))
    }
}

/// Reads a `<prefix><integer>\r\n` line at `pos`. Returns (value, new_pos).
fn read_int_line(buf: &[u8], pos: usize, prefix: u8) -> KvResult<Option<(i64, usize)>> {
    if buf.len() <= pos {
        return Ok(None);
    }
    if buf[pos] != prefix {
        return Err(KvError::Protocol(format!(
            "expected {:?}, found {:?}",
            prefix as char, buf[pos] as char
        )));
    }
    let Some(rel) = buf[pos..].windows(2).position(|w| w == b"\r\n") else {
        return Ok(None);
    };
    let line = &buf[pos + 1..pos + rel];
    let s = std::str::from_utf8(line)
        .map_err(|_| KvError::Protocol("non-utf8 integer line".into()))?;
    let v: i64 = s
        .parse()
        .map_err(|_| KvError::Protocol(format!("bad integer {s:?}")))?;
    Ok(Some((v, pos + rel + 2)))
}

fn put_bulk(out: &mut BytesMut, data: &[u8]) {
    out.put_slice(format!("${}\r\n", data.len()).as_bytes());
    out.put_slice(data);
    out.put_slice(b"\r\n");
}

impl ProtocolParser for RespParser {
    fn name(&self) -> &'static str {
        "redis-resp"
    }

    fn feed(&mut self, bytes: &[u8]) {
        // Reserving first lets the buffer reclaim its consumed prefix.
        self.buf.reserve(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    fn next_request(&mut self) -> KvResult<Option<Request>> {
        let Some((used, args)) = Self::parse_array(&self.buf)? else {
            return Ok(None);
        };
        self.buf.advance(used);
        if args.is_empty() {
            return Err(KvError::Protocol("empty command".into()));
        }
        let cmd = String::from_utf8_lossy(&args[0]).to_ascii_uppercase();
        let id = self.fresh_id();
        let (op, shape) = match (cmd.as_str(), args.len()) {
            ("SET", 3) => (
                Op::Put {
                    key: Key::from(args[1].clone()),
                    value: Value::from(args[2].clone()),
                },
                PendingShape::Done,
            ),
            ("GET", 2) => (
                Op::Get {
                    key: Key::from(args[1].clone()),
                },
                PendingShape::Value,
            ),
            ("DEL", 2) => (
                Op::Del {
                    key: Key::from(args[1].clone()),
                },
                PendingShape::Done,
            ),
            ("SCAN", 4) => {
                let limit: u32 = String::from_utf8_lossy(&args[3])
                    .parse()
                    .map_err(|_| KvError::Protocol("bad SCAN limit".into()))?;
                (
                    Op::Scan {
                        start: Key::from(args[1].clone()),
                        end: Key::from(args[2].clone()),
                        limit,
                    },
                    PendingShape::Entries,
                )
            }
            (other, n) => {
                return Err(KvError::Protocol(format!(
                    "unsupported RESP command {other} with {n} args"
                )))
            }
        };
        self.pending_ops.push_back(shape);
        Ok(Some(Request::new(id, op)))
    }

    fn next_response(&mut self) -> KvResult<Option<Response>> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let shape = *self
            .pending_ops
            .front()
            .ok_or_else(|| KvError::Protocol("response with no pending request".into()))?;
        let id = RequestId::compose(
            self.client,
            self.next_seq.wrapping_sub(self.pending_ops.len() as u32),
        );
        let buf = &self.buf[..];
        let consumed;
        let result: Result<RespBody, KvError> = match buf[0] {
            b'+' => {
                let Some(rel) = buf.windows(2).position(|w| w == b"\r\n") else {
                    return Ok(None);
                };
                consumed = rel + 2;
                Ok(RespBody::Done)
            }
            b'-' => {
                let Some(rel) = buf.windows(2).position(|w| w == b"\r\n") else {
                    return Ok(None);
                };
                let msg = String::from_utf8_lossy(&buf[1..rel]).to_string();
                consumed = rel + 2;
                if msg.contains("not found") || msg.contains("no such key") {
                    Err(KvError::NotFound)
                } else {
                    Err(KvError::Rejected(msg))
                }
            }
            b'$' => {
                let Some((len, used)) = read_int_line(buf, 0, b'$')? else {
                    return Ok(None);
                };
                if len < 0 {
                    consumed = used;
                    Err(KvError::NotFound)
                } else {
                    let len = len as usize;
                    if buf.len() < used + len + 2 {
                        return Ok(None);
                    }
                    let val = Value::from(buf[used..used + len].to_vec());
                    consumed = used + len + 2;
                    Ok(RespBody::Value(VersionedValue::new(val, 0)))
                }
            }
            b'*' => {
                // Array of alternating key/value bulks (our SCAN reply).
                let Some((used, items)) = Self::parse_array(buf)? else {
                    return Ok(None);
                };
                consumed = used;
                let entries = items
                    .chunks_exact(2)
                    .map(|kv| {
                        (
                            Key::from(kv[0].clone()),
                            VersionedValue::new(Value::from(kv[1].clone()), 0),
                        )
                    })
                    .collect();
                Ok(RespBody::Entries(entries))
            }
            other => {
                return Err(KvError::Protocol(format!(
                    "unexpected RESP reply byte {:?}",
                    other as char
                )))
            }
        };
        self.buf.advance(consumed);
        self.pending_ops.pop_front();
        // `shape` is consumed above only to disambiguate reply framing; the
        // decoded result is surfaced as-is.
        let _ = shape;
        Ok(Some(Response { id, result }))
    }

    fn encode_request(&mut self, req: &Request, out: &mut BytesMut) {
        let args: Vec<Vec<u8>> = match &req.op {
            Op::Put { key, value } => vec![
                b"SET".to_vec(),
                key.as_bytes().to_vec(),
                value.as_bytes().to_vec(),
            ],
            Op::Get { key } => vec![b"GET".to_vec(), key.as_bytes().to_vec()],
            Op::Del { key } => vec![b"DEL".to_vec(), key.as_bytes().to_vec()],
            Op::Scan { start, end, limit } => vec![
                b"SCAN".to_vec(),
                start.as_bytes().to_vec(),
                end.as_bytes().to_vec(),
                limit.to_string().into_bytes(),
            ],
            // Tables don't exist in RESP; emulate as no-ops on encode.
            Op::CreateTable { .. } | Op::DeleteTable { .. } => vec![b"PING".to_vec()],
        };
        out.put_slice(format!("*{}\r\n", args.len()).as_bytes());
        for a in &args {
            put_bulk(out, a);
        }
        self.pending_ops.push_back(match &req.op {
            Op::Get { .. } => PendingShape::Value,
            Op::Scan { .. } => PendingShape::Entries,
            _ => PendingShape::Done,
        });
        self.next_seq = self.next_seq.wrapping_add(1);
    }

    fn encode_response(&mut self, resp: &Response, out: &mut BytesMut) {
        match &resp.result {
            Ok(RespBody::Done) => out.put_slice(b"+OK\r\n"),
            Ok(RespBody::Value(v)) => put_bulk(out, v.value.as_bytes()),
            Ok(RespBody::Entries(entries)) => {
                out.put_slice(format!("*{}\r\n", entries.len() * 2).as_bytes());
                for (k, v) in entries {
                    put_bulk(out, k.as_bytes());
                    put_bulk(out, v.value.as_bytes());
                }
            }
            Err(KvError::NotFound) => out.put_slice(b"$-1\r\n"),
            Err(e) => out.put_slice(format!("-ERR {e}\r\n").as_bytes()),
        }
    }
}

// ---------------------------------------------------------------------------
// SSDB protocol
// ---------------------------------------------------------------------------

/// SSDB line protocol codec.
///
/// Wire format: each packet is a sequence of `<len>\n<data>\n` blocks
/// terminated by an empty line (`\n`). Requests: `get k`, `set k v`,
/// `del k`, `scan start end limit`. Responses start with a status block:
/// `ok`, `not_found`, or `error`.
#[derive(Debug)]
pub struct SsdbParser {
    buf: BytesMut,
    next_seq: u32,
    client: ClientId,
    pending: usize,
}

impl SsdbParser {
    /// Creates a codec; `client` seeds synthesized request ids.
    pub fn new(client: ClientId) -> Self {
        SsdbParser {
            buf: BytesMut::new(),
            next_seq: 0,
            client,
            pending: 0,
        }
    }

    /// Parses one packet (list of blocks) from the buffer front.
    fn parse_packet(buf: &[u8]) -> KvResult<Option<(usize, Vec<Vec<u8>>)>> {
        let mut pos = 0usize;
        let mut blocks = Vec::new();
        loop {
            if pos >= buf.len() {
                return Ok(None);
            }
            if buf[pos] == b'\n' {
                return Ok(Some((pos + 1, blocks)));
            }
            let Some(rel) = buf[pos..].iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let len_str = std::str::from_utf8(&buf[pos..pos + rel])
                .map_err(|_| KvError::Protocol("non-utf8 ssdb length".into()))?;
            let len: usize = len_str
                .trim()
                .parse()
                .map_err(|_| KvError::Protocol(format!("bad ssdb length {len_str:?}")))?;
            let data_start = pos + rel + 1;
            if buf.len() < data_start + len + 1 {
                return Ok(None);
            }
            blocks.push(buf[data_start..data_start + len].to_vec());
            if buf[data_start + len] != b'\n' {
                return Err(KvError::Protocol("missing newline after ssdb block".into()));
            }
            pos = data_start + len + 1;
        }
    }

    fn put_block(out: &mut BytesMut, data: &[u8]) {
        out.put_slice(format!("{}\n", data.len()).as_bytes());
        out.put_slice(data);
        out.put_slice(b"\n");
    }
}

impl ProtocolParser for SsdbParser {
    fn name(&self) -> &'static str {
        "ssdb-text"
    }

    fn feed(&mut self, bytes: &[u8]) {
        // Reserving first lets the buffer reclaim its consumed prefix.
        self.buf.reserve(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    fn next_request(&mut self) -> KvResult<Option<Request>> {
        let Some((used, blocks)) = Self::parse_packet(&self.buf)? else {
            return Ok(None);
        };
        self.buf.advance(used);
        if blocks.is_empty() {
            return Err(KvError::Protocol("empty ssdb packet".into()));
        }
        let cmd = String::from_utf8_lossy(&blocks[0]).to_ascii_lowercase();
        let id = RequestId::compose(self.client, self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(1);
        self.pending += 1;
        let op = match (cmd.as_str(), blocks.len()) {
            ("set", 3) => Op::Put {
                key: Key::from(blocks[1].clone()),
                value: Value::from(blocks[2].clone()),
            },
            ("get", 2) => Op::Get {
                key: Key::from(blocks[1].clone()),
            },
            ("del", 2) => Op::Del {
                key: Key::from(blocks[1].clone()),
            },
            ("scan", 4) => Op::Scan {
                start: Key::from(blocks[1].clone()),
                end: Key::from(blocks[2].clone()),
                limit: String::from_utf8_lossy(&blocks[3])
                    .parse()
                    .map_err(|_| KvError::Protocol("bad scan limit".into()))?,
            },
            (other, n) => {
                return Err(KvError::Protocol(format!(
                    "unsupported ssdb command {other}/{n}"
                )))
            }
        };
        Ok(Some(Request::new(id, op)))
    }

    fn next_response(&mut self) -> KvResult<Option<Response>> {
        let Some((used, blocks)) = Self::parse_packet(&self.buf)? else {
            return Ok(None);
        };
        self.buf.advance(used);
        if blocks.is_empty() {
            return Err(KvError::Protocol("empty ssdb reply".into()));
        }
        let id = RequestId::compose(
            self.client,
            self.next_seq.wrapping_sub(self.pending as u32),
        );
        self.pending = self.pending.saturating_sub(1);
        let status = String::from_utf8_lossy(&blocks[0]).to_string();
        let result = match status.as_str() {
            "ok" => match blocks.len() {
                1 => Ok(RespBody::Done),
                2 => Ok(RespBody::Value(VersionedValue::new(
                    Value::from(blocks[1].clone()),
                    0,
                ))),
                _ => Ok(RespBody::Entries(
                    blocks[1..]
                        .chunks_exact(2)
                        .map(|kv| {
                            (
                                Key::from(kv[0].clone()),
                                VersionedValue::new(Value::from(kv[1].clone()), 0),
                            )
                        })
                        .collect(),
                )),
            },
            "not_found" => Err(KvError::NotFound),
            other => Err(KvError::Rejected(other.to_string())),
        };
        Ok(Some(Response { id, result }))
    }

    fn encode_request(&mut self, req: &Request, out: &mut BytesMut) {
        let blocks: Vec<Vec<u8>> = match &req.op {
            Op::Put { key, value } => vec![
                b"set".to_vec(),
                key.as_bytes().to_vec(),
                value.as_bytes().to_vec(),
            ],
            Op::Get { key } => vec![b"get".to_vec(), key.as_bytes().to_vec()],
            Op::Del { key } => vec![b"del".to_vec(), key.as_bytes().to_vec()],
            Op::Scan { start, end, limit } => vec![
                b"scan".to_vec(),
                start.as_bytes().to_vec(),
                end.as_bytes().to_vec(),
                limit.to_string().into_bytes(),
            ],
            Op::CreateTable { .. } | Op::DeleteTable { .. } => vec![b"ping".to_vec()],
        };
        for b in &blocks {
            Self::put_block(out, b);
        }
        out.put_slice(b"\n");
        self.pending += 1;
        self.next_seq = self.next_seq.wrapping_add(1);
    }

    fn encode_response(&mut self, resp: &Response, out: &mut BytesMut) {
        match &resp.result {
            Ok(RespBody::Done) => Self::put_block(out, b"ok"),
            Ok(RespBody::Value(v)) => {
                Self::put_block(out, b"ok");
                Self::put_block(out, v.value.as_bytes());
            }
            Ok(RespBody::Entries(entries)) => {
                Self::put_block(out, b"ok");
                for (k, v) in entries {
                    Self::put_block(out, k.as_bytes());
                    Self::put_block(out, v.value.as_bytes());
                }
            }
            Err(KvError::NotFound) => Self::put_block(out, b"not_found"),
            Err(e) => {
                Self::put_block(out, b"error");
                Self::put_block(out, e.to_string().as_bytes());
            }
        }
        out.put_slice(b"\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ClientId {
        ClientId(9)
    }

    #[test]
    fn resp_request_parse() {
        let mut p = RespParser::new(cid());
        p.feed(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
        let r1 = p.next_request().unwrap().unwrap();
        assert!(matches!(r1.op, Op::Put { .. }));
        let r2 = p.next_request().unwrap().unwrap();
        assert_eq!(r2.op, Op::Get { key: Key::from("k") });
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn resp_incremental_parse() {
        let mut p = RespParser::new(cid());
        let wire = b"*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n";
        for i in 0..wire.len() - 1 {
            p.feed(&wire[i..i + 1]);
            assert!(p.next_request().unwrap().is_none(), "at byte {i}");
        }
        p.feed(&wire[wire.len() - 1..]);
        assert!(p.next_request().unwrap().is_some());
    }

    #[test]
    fn resp_response_roundtrip() {
        let mut server = RespParser::new(cid());
        let mut client = RespParser::new(cid());
        let mut wire = BytesMut::new();
        // Client must register pending shape by encoding the request first.
        client.encode_request(
            &Request::new(RequestId::compose(cid(), 0), Op::Get { key: Key::from("k") }),
            &mut BytesMut::new(),
        );
        server.encode_response(
            &Response::ok(
                RequestId::compose(cid(), 0),
                RespBody::Value(VersionedValue::new(Value::from("world"), 0)),
            ),
            &mut wire,
        );
        client.feed(&wire);
        let resp = client.next_response().unwrap().unwrap();
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("world"), 0)))
        );
    }

    #[test]
    fn resp_nil_maps_to_not_found() {
        let mut client = RespParser::new(cid());
        client.encode_request(
            &Request::new(RequestId::compose(cid(), 0), Op::Get { key: Key::from("k") }),
            &mut BytesMut::new(),
        );
        client.feed(b"$-1\r\n");
        let resp = client.next_response().unwrap().unwrap();
        assert_eq!(resp.result, Err(KvError::NotFound));
    }

    #[test]
    fn resp_rejects_garbage() {
        let mut p = RespParser::new(cid());
        p.feed(b"!!!!\r\n");
        assert!(p.next_request().is_err());
    }

    #[test]
    fn resp_binary_safe_values() {
        let mut server = RespParser::new(cid());
        let mut wire = BytesMut::new();
        let v = Value::from(vec![0u8, 1, 2, b'\r', b'\n', 255]);
        server.encode_response(
            &Response::ok(
                RequestId::compose(cid(), 0),
                RespBody::Value(VersionedValue::new(v.clone(), 0)),
            ),
            &mut wire,
        );
        let mut client = RespParser::new(cid());
        client.encode_request(
            &Request::new(RequestId::compose(cid(), 0), Op::Get { key: Key::from("k") }),
            &mut BytesMut::new(),
        );
        client.feed(&wire);
        let resp = client.next_response().unwrap().unwrap();
        assert_eq!(resp.result, Ok(RespBody::Value(VersionedValue::new(v, 0))));
    }

    #[test]
    fn ssdb_request_parse() {
        let mut p = SsdbParser::new(cid());
        p.feed(b"3\nset\n1\nk\n3\nval\n\n3\nget\n1\nk\n\n");
        assert!(matches!(
            p.next_request().unwrap().unwrap().op,
            Op::Put { .. }
        ));
        assert_eq!(
            p.next_request().unwrap().unwrap().op,
            Op::Get { key: Key::from("k") }
        );
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn ssdb_response_roundtrip() {
        let mut server = SsdbParser::new(cid());
        let mut client = SsdbParser::new(cid());
        let mut scratch = BytesMut::new();
        client.encode_request(
            &Request::new(RequestId::compose(cid(), 0), Op::Get { key: Key::from("k") }),
            &mut scratch,
        );
        let mut wire = BytesMut::new();
        server.encode_response(
            &Response::ok(
                RequestId::compose(cid(), 0),
                RespBody::Value(VersionedValue::new(Value::from("abc"), 0)),
            ),
            &mut wire,
        );
        client.feed(&wire);
        let resp = client.next_response().unwrap().unwrap();
        assert_eq!(
            resp.result,
            Ok(RespBody::Value(VersionedValue::new(Value::from("abc"), 0)))
        );
    }

    #[test]
    fn ssdb_not_found() {
        let mut client = SsdbParser::new(cid());
        client.encode_request(
            &Request::new(RequestId::compose(cid(), 0), Op::Get { key: Key::from("k") }),
            &mut BytesMut::new(),
        );
        client.feed(b"9\nnot_found\n\n");
        assert_eq!(
            client.next_response().unwrap().unwrap().result,
            Err(KvError::NotFound)
        );
    }

    #[test]
    fn ssdb_incremental_parse() {
        let mut p = SsdbParser::new(cid());
        let wire = b"3\nget\n5\nhello\n\n";
        for i in 0..wire.len() - 1 {
            p.feed(&wire[i..i + 1]);
            assert!(p.next_request().unwrap().is_none(), "at byte {i}");
        }
        p.feed(&wire[wire.len() - 1..]);
        assert!(p.next_request().unwrap().is_some());
    }

    #[test]
    fn ssdb_scan_roundtrip() {
        let mut server = SsdbParser::new(cid());
        let mut client = SsdbParser::new(cid());
        let mut scratch = BytesMut::new();
        client.encode_request(
            &Request::new(
                RequestId::compose(cid(), 0),
                Op::Scan {
                    start: Key::from("a"),
                    end: Key::from("z"),
                    limit: 2,
                },
            ),
            &mut scratch,
        );
        // Server sees the same request shape.
        server.feed(&scratch);
        let req = server.next_request().unwrap().unwrap();
        assert!(matches!(req.op, Op::Scan { limit: 2, .. }));
        let mut wire = BytesMut::new();
        server.encode_response(
            &Response::ok(
                req.id,
                RespBody::Entries(vec![
                    (Key::from("a"), VersionedValue::new(Value::from("1"), 0)),
                    (Key::from("b"), VersionedValue::new(Value::from("2"), 0)),
                ]),
            ),
            &mut wire,
        );
        client.feed(&wire);
        let resp = client.next_response().unwrap().unwrap();
        match resp.result.unwrap() {
            RespBody::Entries(es) => assert_eq!(es.len(), 2),
            other => panic!("wrong shape: {other:?}"),
        }
    }
}
