//! Control-plane and replication messages.
//!
//! Everything that travels between controlets, the coordinator, the shared
//! log, and the DLM is a [`NetMsg`]. Client traffic ([`Request`]/[`Response`])
//! is wrapped in the same envelope so a single transport (and a single DES
//! event type) carries the whole system.

use crate::client::{Request, Response};
use crate::{wire, wire_enum, wire_struct};
use bespokv_types::{
    mode::{Consistency, Topology},
    shardmap::Partitioning,
    ClientId, Duration, Key, Mode, NodeId, RequestId, ShardId, ShardInfo, ShardMap, Value,
    Version,
};
use bytes::{Bytes, BytesMut};

/// One replicated mutation: `value: None` encodes a delete (tombstone).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogEntry {
    /// Target table.
    pub table: String,
    /// Key mutated.
    pub key: Key,
    /// New value, or `None` for a delete.
    pub value: Option<Value>,
    /// Version assigned by the ordering authority.
    pub version: Version,
}

wire_struct!(LogEntry {
    table,
    key,
    value,
    version
});

impl LogEntry {
    /// Approximate wire footprint, for the DES link model.
    pub fn wire_size(&self) -> usize {
        16 + self.table.len()
            + self.key.len()
            + self.value.as_ref().map_or(0, |v| v.len())
    }
}

/// Replication-path messages (controlet <-> controlet).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplMsg {
    /// Chain replication: forward a write down the chain (MS+SC).
    ChainPut {
        /// Shard the write belongs to.
        shard: ShardId,
        /// Sender's view of the shard epoch; stale epochs are rejected.
        epoch: u64,
        /// Originating client request (for the head's reply bookkeeping).
        rid: RequestId,
        /// The mutation.
        entry: LogEntry,
    },
    /// Chain replication: ack flowing back up the chain (MS+SC).
    ChainAck {
        /// Shard.
        shard: ShardId,
        /// Epoch.
        epoch: u64,
        /// Request being acknowledged.
        rid: RequestId,
        /// Version the tail durably holds.
        version: Version,
    },
    /// Asynchronous propagation batch (MS+EC master -> slaves).
    PropBatch {
        /// Shard.
        shard: ShardId,
        /// Epoch.
        epoch: u64,
        /// Sequence number of the first entry in the batch.
        first_seq: u64,
        /// Highest sequence the master has trimmed from its resend buffer.
        /// Everything at or below it was acknowledged by the replica set of
        /// an earlier configuration and is therefore covered by any later
        /// joiner's recovery snapshot; a slave whose cursor is below the
        /// floor fast-forwards to it instead of waiting for entries the
        /// master can no longer send.
        floor: u64,
        /// Remaining deadline budget of the oldest client write in the
        /// batch when it was flushed ([`Duration::ZERO`] = unbounded).
        /// Telemetry for slow-replica diagnosis: committed work is never
        /// dropped mid-replication, but a slave can see how far behind the
        /// clients' patience it is running.
        budget: Duration,
        /// The mutations, in sequence order.
        entries: Vec<LogEntry>,
    },
    /// Cumulative propagation ack (slave -> master).
    PropAck {
        /// Shard.
        shard: ShardId,
        /// Epoch of the propagation stream being acknowledged; the master
        /// ignores acks from a stale epoch (a delayed ack from before a
        /// failover must not mark new-stream entries as replicated).
        epoch: u64,
        /// Highest contiguous sequence applied by the sender.
        upto: u64,
    },
    /// Synchronous peer write (AA+SC, under DLM protection).
    PeerWrite {
        /// Shard.
        shard: ShardId,
        /// Epoch.
        epoch: u64,
        /// Request id the origin is waiting on.
        rid: RequestId,
        /// The mutation.
        entry: LogEntry,
    },
    /// Ack for a [`ReplMsg::PeerWrite`].
    PeerWriteAck {
        /// Shard.
        shard: ShardId,
        /// Request id.
        rid: RequestId,
    },
    /// A client request forwarded controlet-to-controlet (transitions, P2P
    /// topology, and wrong-node redirects that choose to proxy).
    ForwardedReq {
        /// The original request.
        req: Request,
        /// Controlet that should receive the reply and relay it.
        reply_via: NodeId,
    },
    /// Response to a forwarded request, flowing back to the relay.
    ForwardedResp {
        /// The response to relay.
        resp: Response,
    },
    /// Ask a peer datalet for a state snapshot (failover recovery).
    RecoveryReq {
        /// Shard being recovered.
        shard: ShardId,
        /// Stream chunks starting at this position in the snapshot.
        from: u64,
        /// Durable version floor the requester already holds: the source
        /// may skip snapshot entries with `version <= floor` (delta
        /// catch-up after a restart-from-disk). 0 requests everything.
        floor: u64,
    },
    /// One chunk of recovery state.
    RecoveryChunk {
        /// Shard.
        shard: ShardId,
        /// Position of the first entry in this chunk.
        from: u64,
        /// Source-side cursor consumption for this chunk: the requester's
        /// next `from` is `from + advance`. Not `entries.len()` — the
        /// source may have filtered entries below the requester's floor
        /// after consuming them from the snapshot cursor.
        advance: u64,
        /// Entries in this chunk.
        entries: Vec<LogEntry>,
        /// Whether this is the final chunk.
        done: bool,
        /// Replication sequence the snapshot corresponds to.
        snapshot_seq: u64,
    },
    /// Group commit: several chain writes coalesced into one message
    /// (MS+SC). Semantically identical to the items sent as individual
    /// [`ReplMsg::ChainPut`]s in order; receivers apply idempotently so
    /// duplicated or reordered batches are safe.
    ChainPutBatch {
        /// Shard the writes belong to.
        shard: ShardId,
        /// Sender's view of the shard epoch; stale epochs are rejected.
        epoch: u64,
        /// Remaining deadline budget of the oldest write in the batch at
        /// flush time ([`Duration::ZERO`] = unbounded). Telemetry only:
        /// ordered chain work is always completed, but downstream nodes
        /// can observe how much client patience remains.
        budget: Duration,
        /// The coalesced writes, in version order.
        items: Vec<(RequestId, LogEntry)>,
    },
    /// Group commit: acks for a whole [`ReplMsg::ChainPutBatch`] flowing
    /// back up the chain (MS+SC).
    ChainAckBatch {
        /// Shard.
        shard: ShardId,
        /// Epoch.
        epoch: u64,
        /// `(rid, version)` pairs the tail durably holds.
        items: Vec<(RequestId, Version)>,
    },
    /// An edge thread combined a write batch into the shard's op log and
    /// asks the owning controlet to drain it now rather than on the next
    /// flush timer (latency hint; losing it only costs one timer period).
    CombinerNudge {
        /// Shard whose op log has a batch parked in the handoff queue.
        shard: ShardId,
    },
}

wire_enum!(ReplMsg {
    0 => ChainPut { shard, epoch, rid, entry },
    1 => ChainAck { shard, epoch, rid, version },
    2 => PropBatch { shard, epoch, first_seq, floor, budget, entries },
    3 => PropAck { shard, epoch, upto },
    4 => PeerWrite { shard, epoch, rid, entry },
    5 => PeerWriteAck { shard, rid },
    6 => ForwardedReq { req, reply_via },
    7 => ForwardedResp { resp },
    8 => RecoveryReq { shard, from, floor },
    9 => RecoveryChunk { shard, from, advance, entries, done, snapshot_seq },
    10 => ChainPutBatch { shard, epoch, budget, items },
    11 => ChainAckBatch { shard, epoch, items },
    12 => CombinerNudge { shard },
});

/// Coordinator messages (controlet <-> coordinator, client <-> coordinator).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoordMsg {
    /// Periodic liveness beacon from a controlet (paper: every 5 s).
    Heartbeat {
        /// Reporting node.
        node: NodeId,
        /// Highest replication sequence the node has applied (used to pick
        /// the most up-to-date slave during master election).
        applied: u64,
    },
    /// Request the current shard map.
    GetShardMap,
    /// Full shard-map push (answer to `GetShardMap`, and broadcast on every
    /// reconfiguration).
    ShardMapUpdate {
        /// The authoritative map.
        map: ShardMap,
    },
    /// Direct a controlet to reconfigure one shard (failover or transition).
    Reconfigure {
        /// New shard descriptor (epoch already bumped).
        info: ShardInfo,
    },
    /// Direct a standby controlet to take over `shard` by recovering state
    /// from `source`, then joining with `role_position` in the replica order.
    StartRecovery {
        /// Shard to recover.
        shard: ShardId,
        /// Node to copy state from.
        source: NodeId,
        /// Index this node will occupy in the new replica order.
        role_position: u32,
        /// Shard descriptor after the join completes.
        info: ShardInfo,
    },
    /// A recovering node reports completion to the coordinator.
    RecoveryDone {
        /// Shard recovered.
        shard: ShardId,
        /// The node that finished recovery.
        node: NodeId,
    },
    /// Begin a mode transition for a shard (section V).
    BeginTransition {
        /// Shard to transition.
        shard: ShardId,
        /// Descriptor of the new configuration (new mode, new controlets).
        target: ShardInfo,
    },
    /// A controlet reports that its side of a transition has drained.
    TransitionDrained {
        /// Shard.
        shard: ShardId,
        /// Reporting node.
        node: NodeId,
    },
    /// A freshly (re)started controlet with no shard assignment announces
    /// itself as a standby. Sent on start and re-sent on every heartbeat
    /// until the coordinator assigns it work, so the announcement survives
    /// message loss. The coordinator readmits the node and, if any shard is
    /// under-replicated, immediately directs it to recover.
    StandbyAvailable {
        /// The announcing node.
        node: NodeId,
    },
}

wire_enum!(CoordMsg {
    0 => Heartbeat { node, applied },
    1 => GetShardMap,
    2 => ShardMapUpdate { map },
    3 => Reconfigure { info },
    4 => StartRecovery { shard, source, role_position, info },
    5 => RecoveryDone { shard, node },
    6 => BeginTransition { shard, target },
    7 => TransitionDrained { shard, node },
    8 => StandbyAvailable { node },
});

/// Shared-log messages (controlet <-> shared log; AA+EC ordering).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogMsg {
    /// Append a mutation; the log assigns the global sequence number.
    Append {
        /// Shard (each shard has its own log stream).
        shard: ShardId,
        /// Request the origin is waiting on.
        rid: RequestId,
        /// The mutation (version filled in by the log's sequencer).
        entry: LogEntry,
    },
    /// Ack: the entry is durable at sequence `seq`.
    AppendAck {
        /// Shard.
        shard: ShardId,
        /// Request id.
        rid: RequestId,
        /// Assigned global sequence (also the entry's version).
        seq: u64,
    },
    /// Fetch entries at/after `from_seq` (asynchronous replica catch-up).
    Fetch {
        /// Shard.
        shard: ShardId,
        /// First sequence wanted.
        from_seq: u64,
        /// Max entries to return.
        max: u32,
    },
    /// Batch of log entries.
    FetchResp {
        /// Shard.
        shard: ShardId,
        /// Sequence of the first returned entry.
        first_seq: u64,
        /// Entries, contiguous from `first_seq`.
        entries: Vec<LogEntry>,
        /// Current log tail (next sequence to be assigned).
        tail_seq: u64,
    },
    /// Trim the log up to `upto` (all replicas have applied it).
    Trim {
        /// Shard.
        shard: ShardId,
        /// Sequence below which entries may be discarded.
        upto: u64,
    },
}

wire_enum!(LogMsg {
    0 => Append { shard, rid, entry },
    1 => AppendAck { shard, rid, seq },
    2 => Fetch { shard, from_seq, max },
    3 => FetchResp { shard, first_seq, entries, tail_seq },
    4 => Trim { shard, upto },
});

/// Lock mode for the DLM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

wire_enum!(LockMode {
    0 => Shared,
    1 => Exclusive,
});

/// DLM messages (controlet <-> lock manager; AA+SC serialization).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DlmMsg {
    /// Acquire a lock on `key`.
    Lock {
        /// Key to lock.
        key: Key,
        /// Requesting node.
        owner: NodeId,
        /// Request the owner is waiting on.
        rid: RequestId,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// Lock granted, with a lease and a fencing token.
    Granted {
        /// Key locked.
        key: Key,
        /// Request id.
        rid: RequestId,
        /// Lease duration; the DLM auto-releases after this (paper: locks
        /// are released after a configurable period to guarantee deadlock
        /// freedom).
        lease: Duration,
        /// Monotonic fencing token; stale holders are rejected.
        fencing: u64,
    },
    /// Lock denied (queue full / fast-fail configuration).
    Denied {
        /// Key.
        key: Key,
        /// Request id.
        rid: RequestId,
    },
    /// Release a held lock.
    Unlock {
        /// Key to unlock.
        key: Key,
        /// Releasing node.
        owner: NodeId,
        /// Fencing token returned at grant time.
        fencing: u64,
    },
}

wire_enum!(DlmMsg {
    0 => Lock { key, owner, rid, mode },
    1 => Granted { key, rid, lease, fencing },
    2 => Denied { key, rid },
    3 => Unlock { key, owner, fencing },
});

/// The single envelope carried by every transport in the workspace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetMsg {
    /// Client -> controlet request.
    Client(Request),
    /// Controlet -> client response.
    ClientResp(Response),
    /// Controlet <-> controlet replication traffic.
    Repl(ReplMsg),
    /// Coordinator traffic.
    Coord(CoordMsg),
    /// Shared-log traffic.
    Log(LogMsg),
    /// DLM traffic.
    Dlm(DlmMsg),
}

wire_enum!(NetMsg {
    0 => Client(req),
    1 => ClientResp(resp),
    2 => Repl(m),
    3 => Coord(m),
    4 => Log(m),
    5 => Dlm(m),
});

impl NetMsg {
    /// Approximate serialized size in bytes, used by the simulator's link
    /// model (bandwidth/latency). Cheap analytic estimate — we avoid
    /// actually encoding in the DES hot loop.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 24; // envelope + framing + ids
        match self {
            NetMsg::Client(r) => HDR + request_size(r),
            NetMsg::ClientResp(r) => HDR + response_size(r),
            NetMsg::Repl(m) => {
                HDR + match m {
                    ReplMsg::ChainPut { entry, .. } | ReplMsg::PeerWrite { entry, .. } => {
                        entry.wire_size()
                    }
                    ReplMsg::ChainAck { .. }
                    | ReplMsg::PropAck { .. }
                    | ReplMsg::PeerWriteAck { .. }
                    | ReplMsg::RecoveryReq { .. }
                    | ReplMsg::CombinerNudge { .. } => 8,
                    ReplMsg::PropBatch { entries, .. }
                    | ReplMsg::RecoveryChunk { entries, .. } => {
                        entries.iter().map(LogEntry::wire_size).sum::<usize>() + 16
                    }
                    ReplMsg::ChainPutBatch { items, .. } => {
                        items.iter().map(|(_, e)| e.wire_size() + 8).sum::<usize>() + 16
                    }
                    ReplMsg::ChainAckBatch { items, .. } => 16 * items.len() + 16,
                    ReplMsg::ForwardedReq { req, .. } => request_size(req),
                    ReplMsg::ForwardedResp { resp } => response_size(resp),
                }
            }
            NetMsg::Coord(m) => {
                HDR + match m {
                    CoordMsg::ShardMapUpdate { map } => 32 * map.num_shards() + 16,
                    CoordMsg::Reconfigure { info } | CoordMsg::StartRecovery { info, .. } => {
                        16 + 4 * info.replicas.len()
                    }
                    CoordMsg::BeginTransition { target, .. } => 16 + 4 * target.replicas.len(),
                    _ => 16,
                }
            }
            NetMsg::Log(m) => {
                HDR + match m {
                    LogMsg::Append { entry, .. } => entry.wire_size(),
                    LogMsg::FetchResp { entries, .. } => {
                        entries.iter().map(LogEntry::wire_size).sum::<usize>() + 16
                    }
                    _ => 16,
                }
            }
            NetMsg::Dlm(m) => {
                HDR + match m {
                    DlmMsg::Lock { key, .. }
                    | DlmMsg::Granted { key, .. }
                    | DlmMsg::Denied { key, .. }
                    | DlmMsg::Unlock { key, .. } => key.len() + 16,
                }
            }
        }
    }
}

fn request_size(r: &Request) -> usize {
    let op = match &r.op {
        crate::client::Op::Put { key, value } => key.len() + value.len(),
        crate::client::Op::Get { key } | crate::client::Op::Del { key } => key.len(),
        crate::client::Op::Scan { start, end, .. } => start.len() + end.len() + 4,
        crate::client::Op::CreateTable { name } | crate::client::Op::DeleteTable { name } => {
            name.len()
        }
    };
    12 + r.table.len() + op
}

fn response_size(r: &Response) -> usize {
    12 + match &r.result {
        Ok(crate::client::RespBody::Done) => 1,
        Ok(crate::client::RespBody::Value(v)) => v.value.len() + 8,
        Ok(crate::client::RespBody::Entries(es)) => es
            .iter()
            .map(|(k, v)| k.len() + v.value.len() + 8)
            .sum::<usize>(),
        Err(_) => 16,
    }
}

// --- Wire impls for foreign metadata types ----------------------------------

impl wire::Encode for Topology {
    fn encode(&self, buf: &mut BytesMut) {
        (matches!(self, Topology::ActiveActive) as u8).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl wire::Decode for Topology {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(Topology::MasterSlave),
            1 => Ok(Topology::ActiveActive),
            n => Err(wire::DecodeError(format!("invalid topology {n}"))),
        }
    }
}

impl wire::Encode for Consistency {
    fn encode(&self, buf: &mut BytesMut) {
        (matches!(self, Consistency::Eventual) as u8).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl wire::Decode for Consistency {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(Consistency::Strong),
            1 => Ok(Consistency::Eventual),
            n => Err(wire::DecodeError(format!("invalid consistency {n}"))),
        }
    }
}

impl wire::Encode for Mode {
    fn encode(&self, buf: &mut BytesMut) {
        self.topology.encode(buf);
        self.consistency.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.topology.encoded_len() + self.consistency.encoded_len()
    }
}

impl wire::Decode for Mode {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        Ok(Mode {
            topology: Topology::decode(buf)?,
            consistency: Consistency::decode(buf)?,
        })
    }
}

impl wire::Encode for Partitioning {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Partitioning::ConsistentHash { vnodes } => {
                0u8.encode(buf);
                vnodes.encode(buf);
            }
            Partitioning::Range { split_points } => {
                1u8.encode(buf);
                split_points.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            Partitioning::ConsistentHash { vnodes } => 1 + vnodes.encoded_len(),
            Partitioning::Range { split_points } => 1 + split_points.encoded_len(),
        }
    }
}

impl wire::Decode for Partitioning {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(Partitioning::ConsistentHash {
                vnodes: u32::decode(buf)?,
            }),
            1 => Ok(Partitioning::Range {
                split_points: Vec::decode(buf)?,
            }),
            n => Err(wire::DecodeError(format!("invalid partitioning {n}"))),
        }
    }
}

impl wire::Encode for ShardInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.shard.encode(buf);
        self.mode.encode(buf);
        self.replicas.encode(buf);
        self.epoch.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.shard.encoded_len()
            + self.mode.encoded_len()
            + self.replicas.encoded_len()
            + self.epoch.encoded_len()
    }
}

impl wire::Decode for ShardInfo {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        Ok(ShardInfo {
            shard: ShardId::decode(buf)?,
            mode: Mode::decode(buf)?,
            replicas: Vec::decode(buf)?,
            epoch: u64::decode(buf)?,
        })
    }
}

impl wire::Encode for ShardMap {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.partitioning.encode(buf);
        self.shards.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.epoch.encoded_len()
            + self.partitioning.encoded_len()
            + self.shards.encoded_len()
    }
}

impl wire::Decode for ShardMap {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        Ok(ShardMap {
            epoch: u64::decode(buf)?,
            partitioning: Partitioning::decode(buf)?,
            shards: Vec::decode(buf)?,
        })
    }
}

// ClientId appears in messages only through RequestId composition today, but
// keep the symmetry for extensions.
const _: fn() = || {
    fn assert_wire<T: wire::Encode + wire::Decode>() {}
    assert_wire::<ClientId>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Op;
    use crate::wire::{Decode, Encode};
    use bespokv_types::ClientId;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), v);
    }

    fn entry() -> LogEntry {
        LogEntry {
            table: "t".into(),
            key: Key::from("k1"),
            value: Some(Value::from("v1")),
            version: 42,
        }
    }

    fn rid() -> RequestId {
        RequestId::compose(ClientId(1), 7)
    }

    #[test]
    fn repl_messages_roundtrip() {
        roundtrip(ReplMsg::ChainPut {
            shard: ShardId(0),
            epoch: 3,
            rid: rid(),
            entry: entry(),
        });
        roundtrip(ReplMsg::ChainAck {
            shard: ShardId(0),
            epoch: 3,
            rid: rid(),
            version: 42,
        });
        roundtrip(ReplMsg::PropBatch {
            shard: ShardId(1),
            epoch: 0,
            first_seq: 10,
            floor: 4,
            budget: Duration::from_millis(75),
            entries: vec![entry(), entry()],
        });
        roundtrip(ReplMsg::RecoveryReq {
            shard: ShardId(2),
            from: 64,
            floor: 17,
        });
        roundtrip(ReplMsg::RecoveryChunk {
            shard: ShardId(1),
            from: 0,
            advance: 3,
            entries: vec![entry()],
            done: true,
            snapshot_seq: 100,
        });
        roundtrip(ReplMsg::ForwardedReq {
            req: Request::new(rid(), Op::Get { key: Key::from("k") }),
            reply_via: NodeId(2),
        });
    }

    #[test]
    fn chain_batch_messages_roundtrip() {
        roundtrip(ReplMsg::ChainPutBatch {
            shard: ShardId(0),
            epoch: 5,
            budget: Duration::from_millis(40),
            items: vec![(rid(), entry()), (RequestId::compose(ClientId(2), 9), entry())],
        });
        roundtrip(ReplMsg::ChainPutBatch {
            shard: ShardId(3),
            epoch: 0,
            budget: Duration::ZERO,
            items: Vec::new(),
        });
        roundtrip(ReplMsg::ChainAckBatch {
            shard: ShardId(0),
            epoch: 5,
            items: vec![(rid(), 42), (RequestId::compose(ClientId(2), 9), 43)],
        });
        roundtrip(ReplMsg::CombinerNudge { shard: ShardId(2) });
    }

    #[test]
    fn chain_batch_wire_size_tracks_payload() {
        let one = NetMsg::Repl(ReplMsg::ChainPutBatch {
            shard: ShardId(0),
            epoch: 1,
            budget: Duration::ZERO,
            items: vec![(rid(), entry())],
        });
        let many = NetMsg::Repl(ReplMsg::ChainPutBatch {
            shard: ShardId(0),
            epoch: 1,
            budget: Duration::ZERO,
            items: (0..32).map(|_| (rid(), entry())).collect(),
        });
        // 31 extra items, each at least one entry's footprint.
        assert!(many.wire_size() >= one.wire_size() + 31 * entry().wire_size());
    }

    #[test]
    fn coord_messages_roundtrip() {
        let map = ShardMap::dense(
            2,
            3,
            Mode::AA_EC,
            Partitioning::ConsistentHash { vnodes: 16 },
        );
        roundtrip(CoordMsg::Heartbeat {
            node: NodeId(4),
            applied: 99,
        });
        roundtrip(CoordMsg::GetShardMap);
        roundtrip(CoordMsg::ShardMapUpdate { map: map.clone() });
        roundtrip(CoordMsg::StartRecovery {
            shard: ShardId(1),
            source: NodeId(5),
            role_position: 2,
            info: map.shards[1].clone(),
        });
    }

    #[test]
    fn log_and_dlm_messages_roundtrip() {
        roundtrip(LogMsg::Append {
            shard: ShardId(0),
            rid: rid(),
            entry: entry(),
        });
        roundtrip(LogMsg::FetchResp {
            shard: ShardId(0),
            first_seq: 5,
            entries: vec![entry()],
            tail_seq: 6,
        });
        roundtrip(DlmMsg::Lock {
            key: Key::from("k"),
            owner: NodeId(1),
            rid: rid(),
            mode: LockMode::Exclusive,
        });
        roundtrip(DlmMsg::Granted {
            key: Key::from("k"),
            rid: rid(),
            lease: Duration::from_millis(500),
            fencing: 12,
        });
    }

    #[test]
    fn netmsg_envelope_roundtrip() {
        roundtrip(NetMsg::Client(Request::new(
            rid(),
            Op::Put {
                key: Key::from("k"),
                value: Value::from("v"),
            },
        )));
        roundtrip(NetMsg::Repl(ReplMsg::PropAck {
            shard: ShardId(0),
            epoch: 2,
            upto: 3,
        }));
        roundtrip(NetMsg::Coord(CoordMsg::GetShardMap));
        roundtrip(NetMsg::Coord(CoordMsg::StandbyAvailable { node: NodeId(6) }));
    }

    #[test]
    fn range_partitioning_roundtrip() {
        roundtrip(Partitioning::Range {
            split_points: vec![Key::from("h"), Key::from("p")],
        });
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = NetMsg::Client(Request::new(rid(), Op::Get { key: Key::from("k") }));
        let big = NetMsg::Client(Request::new(
            rid(),
            Op::Put {
                key: Key::from("k"),
                value: Value::from(vec![0u8; 4096]),
            },
        ));
        assert!(big.wire_size() > small.wire_size() + 4000);
    }

    #[test]
    fn tombstone_entry_roundtrip() {
        roundtrip(LogEntry {
            table: String::new(),
            key: Key::from("gone"),
            value: None,
            version: 7,
        });
    }
}
