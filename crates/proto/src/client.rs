//! Client-facing request/response types (the paper's Client API, Table II).
//!
//! A [`Request`] is what the client library sends to a controlet; a
//! [`Response`] is what comes back. Tables give applications namespaces
//! (`CreateTable`/`DeleteTable`); `Scan` is the range-query extension
//! (section IV-B); `level` is the per-request consistency override
//! (section IV-C).

use crate::{wire, wire_enum, wire_struct};
use bespokv_types::{
    ConsistencyLevel, Instant, Key, KvError, NodeId, RequestId, Value, Version, VersionedValue,
};
use bytes::{Bytes, BytesMut};

/// A single KV operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Write a key/value pair.
    Put {
        /// Key to write.
        key: Key,
        /// Value to store.
        value: Value,
    },
    /// Read the value of a key.
    Get {
        /// Key to read.
        key: Key,
    },
    /// Delete a key/value pair.
    Del {
        /// Key to delete.
        key: Key,
    },
    /// Range query over `[start, end)`, returning at most `limit` entries
    /// (0 = unlimited). Requires a range-capable datalet (tMT/tLSM).
    Scan {
        /// Inclusive lower bound.
        start: Key,
        /// Exclusive upper bound.
        end: Key,
        /// Maximum entries to return; 0 means no limit.
        limit: u32,
    },
    /// Create a table (namespace).
    CreateTable {
        /// Table name.
        name: String,
    },
    /// Delete a table and all its contents.
    DeleteTable {
        /// Table name.
        name: String,
    },
}

impl Op {
    /// The key this operation targets, if it is a point operation.
    pub fn key(&self) -> Option<&Key> {
        match self {
            Op::Put { key, .. } | Op::Get { key } | Op::Del { key } => Some(key),
            _ => None,
        }
    }

    /// Whether this operation mutates state (drives routing: writes go to
    /// the ordering authority, reads may be relaxed).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Put { .. } | Op::Del { .. } | Op::CreateTable { .. } | Op::DeleteTable { .. }
        )
    }

    /// Short operation name, for stats and tracing.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Put { .. } => "put",
            Op::Get { .. } => "get",
            Op::Del { .. } => "del",
            Op::Scan { .. } => "scan",
            Op::CreateTable { .. } => "create_table",
            Op::DeleteTable { .. } => "delete_table",
        }
    }
}

/// A client request as routed to a controlet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Unique id (client id + sequence); echoed in the [`Response`].
    pub id: RequestId,
    /// Target table. The default table is `""`.
    pub table: String,
    /// The operation.
    pub op: Op,
    /// Per-request consistency override (section IV-C).
    pub level: ConsistencyLevel,
    /// Absolute deadline: servers drop the request (with an explicit
    /// `Overloaded` reply) instead of executing it once this instant has
    /// passed. [`Instant::ZERO`] means "no deadline".
    pub deadline: Instant,
}

impl Request {
    /// Builds a request against the default table with default consistency
    /// and no deadline.
    pub fn new(id: RequestId, op: Op) -> Self {
        Request {
            id,
            table: String::new(),
            op,
            level: ConsistencyLevel::Default,
            deadline: Instant::ZERO,
        }
    }

    /// Sets the table.
    pub fn with_table(mut self, table: impl Into<String>) -> Self {
        self.table = table.into();
        self
    }

    /// Sets the per-request consistency level.
    pub fn with_level(mut self, level: ConsistencyLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = deadline;
        self
    }

    /// Whether the deadline (if any) has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline != Instant::ZERO && now >= self.deadline
    }
}

/// Successful response payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RespBody {
    /// Mutation acknowledged (Put/Del/CreateTable/DeleteTable).
    Done,
    /// Value read by a Get.
    Value(VersionedValue),
    /// Entries returned by a Scan, in key order.
    Entries(Vec<(Key, VersionedValue)>),
}

/// A response to a [`Request`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// Echo of the request id.
    pub id: RequestId,
    /// Outcome.
    pub result: Result<RespBody, KvError>,
}

impl Response {
    /// Builds a success response.
    pub fn ok(id: RequestId, body: RespBody) -> Self {
        Response {
            id,
            result: Ok(body),
        }
    }

    /// Builds an error response.
    pub fn err(id: RequestId, e: KvError) -> Self {
        Response { id, result: Err(e) }
    }
}

// --- Wire encodings ---------------------------------------------------------

wire_enum!(Op {
    0 => Put { key, value },
    1 => Get { key },
    2 => Del { key },
    3 => Scan { start, end, limit },
    4 => CreateTable { name },
    5 => DeleteTable { name },
});

// ConsistencyLevel is a foreign plain enum; encode as a tag byte.
impl wire::Encode for ConsistencyLevel {
    fn encode(&self, buf: &mut BytesMut) {
        let tag: u8 = match self {
            ConsistencyLevel::Default => 0,
            ConsistencyLevel::Strong => 1,
            ConsistencyLevel::Eventual => 2,
        };
        tag.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl wire::Decode for ConsistencyLevel {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ConsistencyLevel::Default),
            1 => Ok(ConsistencyLevel::Strong),
            2 => Ok(ConsistencyLevel::Eventual),
            n => Err(wire::DecodeError(format!("invalid consistency level {n}"))),
        }
    }
}

wire_struct!(Request { id, table, op, level, deadline });

impl wire::Encode for VersionedValue {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
        self.version.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.value.encoded_len() + self.version.encoded_len()
    }
}

impl wire::Decode for VersionedValue {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        Ok(VersionedValue {
            value: Value::decode(buf)?,
            version: Version::decode(buf)?,
        })
    }
}

wire_enum!(RespBody {
    0 => Done,
    1 => Value(v),
    2 => Entries(entries),
});

impl wire::Encode for KvError {
    fn encode(&self, buf: &mut BytesMut) {
        use wire::Encode as E;
        match self {
            KvError::NotFound => E::encode(&0u8, buf),
            KvError::NoSuchTable(t) => {
                E::encode(&1u8, buf);
                E::encode(t, buf);
            }
            KvError::WrongNode { node, hint } => {
                E::encode(&2u8, buf);
                E::encode(node, buf);
                E::encode(hint, buf);
            }
            KvError::Unavailable(s) => {
                E::encode(&3u8, buf);
                E::encode(s, buf);
            }
            KvError::Timeout => E::encode(&4u8, buf),
            KvError::LockContended => E::encode(&5u8, buf),
            KvError::LeaseExpired => E::encode(&6u8, buf),
            KvError::NotServing => E::encode(&7u8, buf),
            KvError::Forwarded(n) => {
                E::encode(&8u8, buf);
                E::encode(n, buf);
            }
            KvError::Io(m) => {
                E::encode(&9u8, buf);
                E::encode(m, buf);
            }
            KvError::Corrupt(m) => {
                E::encode(&10u8, buf);
                E::encode(m, buf);
            }
            KvError::Protocol(m) => {
                E::encode(&11u8, buf);
                E::encode(m, buf);
            }
            KvError::Rejected(m) => {
                E::encode(&12u8, buf);
                E::encode(m, buf);
            }
            KvError::Overloaded => E::encode(&13u8, buf),
        }
    }
    fn encoded_len(&self) -> usize {
        use wire::Encode as E;
        1 + match self {
            KvError::NotFound
            | KvError::Timeout
            | KvError::LockContended
            | KvError::LeaseExpired
            | KvError::NotServing
            | KvError::Overloaded => 0,
            KvError::NoSuchTable(t) => E::encoded_len(t),
            KvError::WrongNode { node, hint } => E::encoded_len(node) + E::encoded_len(hint),
            KvError::Forwarded(n) => E::encoded_len(n),
            KvError::Unavailable(s) => E::encoded_len(s),
            KvError::Io(s)
            | KvError::Corrupt(s)
            | KvError::Protocol(s)
            | KvError::Rejected(s) => E::encoded_len(s),
        }
    }
}

impl wire::Decode for KvError {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        use wire::Decode as D;
        Ok(match u8::decode(buf)? {
            0 => KvError::NotFound,
            1 => KvError::NoSuchTable(D::decode(buf)?),
            2 => KvError::WrongNode {
                node: D::decode(buf)?,
                hint: D::decode(buf)?,
            },
            3 => KvError::Unavailable(D::decode(buf)?),
            4 => KvError::Timeout,
            5 => KvError::LockContended,
            6 => KvError::LeaseExpired,
            7 => KvError::NotServing,
            8 => KvError::Forwarded(NodeId::decode(buf)?),
            9 => KvError::Io(D::decode(buf)?),
            10 => KvError::Corrupt(D::decode(buf)?),
            11 => KvError::Protocol(D::decode(buf)?),
            12 => KvError::Rejected(D::decode(buf)?),
            13 => KvError::Overloaded,
            n => return Err(wire::DecodeError(format!("invalid KvError tag {n}"))),
        })
    }
}

impl wire::Encode for Response {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        match &self.result {
            Ok(body) => {
                1u8.encode(buf);
                body.encode(buf);
            }
            Err(e) => {
                0u8.encode(buf);
                e.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + 1
            + match &self.result {
                Ok(body) => body.encoded_len(),
                Err(e) => e.encoded_len(),
            }
    }
}

impl wire::Decode for Response {
    fn decode(buf: &mut Bytes) -> wire::DecodeResult<Self> {
        let id = RequestId::decode(buf)?;
        let result = match u8::decode(buf)? {
            1 => Ok(RespBody::decode(buf)?),
            0 => Err(KvError::decode(buf)?),
            n => return Err(wire::DecodeError(format!("invalid result tag {n}"))),
        };
        Ok(Response { id, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Decode, Encode};
    use bespokv_types::ClientId;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), v);
    }

    fn rid() -> RequestId {
        RequestId::compose(ClientId(3), 17)
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(
            Request::new(
                rid(),
                Op::Put {
                    key: Key::from("k"),
                    value: Value::from("v"),
                },
            )
            .with_table("t1")
            .with_level(ConsistencyLevel::Eventual),
        );
        roundtrip(Request::new(rid(), Op::Get { key: Key::from("k") }));
        roundtrip(Request::new(
            rid(),
            Op::Scan {
                start: Key::from("a"),
                end: Key::from("z"),
                limit: 10,
            },
        ));
        roundtrip(Request::new(
            rid(),
            Op::CreateTable {
                name: "users".into(),
            },
        ));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip(Response::ok(rid(), RespBody::Done));
        roundtrip(Response::ok(
            rid(),
            RespBody::Value(VersionedValue::new(Value::from("x"), 9)),
        ));
        roundtrip(Response::ok(
            rid(),
            RespBody::Entries(vec![
                (Key::from("a"), VersionedValue::new(Value::from("1"), 1)),
                (Key::from("b"), VersionedValue::new(Value::from("2"), 2)),
            ]),
        ));
        roundtrip(Response::err(rid(), KvError::NotFound));
        roundtrip(Response::err(
            rid(),
            KvError::WrongNode {
                node: NodeId(4),
                hint: Some(NodeId(5)),
            },
        ));
        roundtrip(Response::err(rid(), KvError::Overloaded));
    }

    #[test]
    fn deadline_roundtrips_and_expires() {
        use bespokv_types::Duration;
        let req = Request::new(rid(), Op::Get { key: Key::from("k") })
            .with_deadline(Instant::ZERO + Duration::from_millis(5));
        roundtrip(req.clone());
        assert!(!req.expired(Instant::ZERO + Duration::from_millis(4)));
        assert!(req.expired(Instant::ZERO + Duration::from_millis(5)));
        // No deadline never expires.
        let free = Request::new(rid(), Op::Get { key: Key::from("k") });
        assert!(!free.expired(Instant::ZERO + Duration::from_secs(3600)));
    }

    #[test]
    fn op_classification() {
        assert!(Op::Put {
            key: Key::from("k"),
            value: Value::from("v")
        }
        .is_write());
        assert!(!Op::Get { key: Key::from("k") }.is_write());
        assert!(!Op::Scan {
            start: Key::from("a"),
            end: Key::from("b"),
            limit: 0
        }
        .is_write());
        assert_eq!(Op::Del { key: Key::from("k") }.name(), "del");
    }

    #[test]
    fn op_key_access() {
        let op = Op::Get { key: Key::from("k") };
        assert_eq!(op.key(), Some(&Key::from("k")));
        assert_eq!(
            Op::CreateTable {
                name: "t".to_string()
            }
            .key(),
            None
        );
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert!(Op::from_bytes(&[99]).is_err());
        assert!(RespBody::from_bytes(&[77]).is_err());
    }
}
