//! Wire protocol for bespoKV.
//!
//! Defines every message that crosses a node boundary:
//!
//! * [`client`] — the client-facing request/response API (Table II of the
//!   paper), including range queries and per-request consistency levels.
//! * [`messages`] — replication, coordinator, shared-log and DLM traffic,
//!   all wrapped in the single [`messages::NetMsg`] envelope.
//! * [`wire`] — the hand-rolled binary encoding (the paper's "bespoKV
//!   protocol" option) with incremental decode and corruption detection.
//! * [`frame`] — length-prefixed stream framing for TCP transports.
//! * [`parser`]/[`text`] — pluggable protocol parsers: the binary parser
//!   for new datalets, and RESP/SSDB text parsers for porting existing
//!   stores (tRedis / tSSDB).

pub mod client;
pub mod frame;
pub mod messages;
pub mod parser;
pub mod text;
pub mod wire;

pub use client::{Op, Request, RespBody, Response};
pub use messages::{CoordMsg, DlmMsg, LockMode, LogEntry, LogMsg, NetMsg, ReplMsg};
pub use parser::{BinaryParser, ProtocolParser};
pub use text::{RespParser, SsdbParser};
