//! Distributed lock manager (the paper's Redlock-based DLM, Table III).
//!
//! Serializes AA+SC writes: controlets acquire a per-key lock before
//! updating all replicas. Locks are leased — the paper guarantees deadlock
//! freedom by auto-releasing locks "after a configurable period of time" —
//! and every grant carries a monotonically increasing *fencing token* so a
//! holder that lost its lease can be detected and rejected.
//!
//! [`LockTable`] is the pure core (unit-testable, driver-agnostic);
//! [`DlmActor`] wraps it as a runtime actor speaking
//! [`bespokv_proto::DlmMsg`].

use bespokv_proto::{DlmMsg, LockMode, NetMsg};
use bespokv_runtime::{Actor, Addr, Context, Event};
use bespokv_types::{Duration, Instant, Key, NodeId, RequestId};
use std::collections::{HashMap, VecDeque};

/// Identity of one lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requester {
    /// The node asking.
    pub owner: NodeId,
    /// The request it is serving.
    pub rid: RequestId,
    /// Runtime address to answer at.
    pub reply_to: Addr,
}

#[derive(Debug)]
struct Holder {
    owner: NodeId,
    fencing: u64,
    expires: Instant,
}

#[derive(Debug)]
struct Waiter {
    requester: Requester,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct KeyLock {
    /// Current holders: one exclusive or any number of shared.
    holders: Vec<Holder>,
    exclusive: bool,
    queue: VecDeque<Waiter>,
}

/// The outcome of an acquire attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// Granted with this fencing token.
    Granted(u64),
    /// Queued behind current holders.
    Queued,
    /// Rejected (queue full).
    Denied,
}

/// Pure lock table with leases, shared/exclusive modes and FIFO queueing.
pub struct LockTable {
    locks: HashMap<Key, KeyLock>,
    lease: Duration,
    max_queue: usize,
    next_fencing: u64,
    /// Grants produced by operations that release locks (unlock/expiry);
    /// drained by the caller to notify the new holders.
    pending_grants: Vec<(Requester, Key, u64)>,
}

impl LockTable {
    /// Creates a table; `lease` bounds how long a grant lives, `max_queue`
    /// bounds waiters per key.
    pub fn new(lease: Duration, max_queue: usize) -> Self {
        LockTable {
            locks: HashMap::new(),
            lease,
            max_queue,
            next_fencing: 1,
            pending_grants: Vec::new(),
        }
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Duration {
        self.lease
    }

    /// Attempts to acquire `key` in `mode` at time `now`.
    pub fn acquire(
        &mut self,
        key: &Key,
        requester: Requester,
        mode: LockMode,
        now: Instant,
    ) -> Acquire {
        let lock = self.locks.entry(key.clone()).or_default();
        // Lazily expire dead holders before deciding.
        lock.holders.retain(|h| h.expires > now);
        if lock.holders.is_empty() {
            lock.exclusive = false;
        }
        let compatible = lock.holders.is_empty()
            || (!lock.exclusive && mode == LockMode::Shared && lock.queue.is_empty());
        if compatible {
            let fencing = self.next_fencing;
            self.next_fencing += 1;
            lock.exclusive = mode == LockMode::Exclusive;
            lock.holders.push(Holder {
                owner: requester.owner,
                fencing,
                expires: now + self.lease,
            });
            Acquire::Granted(fencing)
        } else if lock.queue.len() >= self.max_queue {
            Acquire::Denied
        } else {
            lock.queue.push_back(Waiter { requester, mode });
            Acquire::Queued
        }
    }

    /// Releases a grant. A stale fencing token (expired and reassigned) is
    /// ignored, which is exactly the fencing property.
    pub fn release(&mut self, key: &Key, owner: NodeId, fencing: u64, now: Instant) {
        let Some(lock) = self.locks.get_mut(key) else {
            return;
        };
        lock.holders
            .retain(|h| !(h.owner == owner && h.fencing == fencing));
        if lock.holders.is_empty() {
            lock.exclusive = false;
        }
        Self::promote_waiters(
            key,
            lock,
            &mut self.next_fencing,
            self.lease,
            now,
            &mut self.pending_grants,
        );
        if lock.holders.is_empty() && lock.queue.is_empty() {
            self.locks.remove(key);
        }
    }

    /// Expires overdue leases across all keys, promoting waiters.
    /// Returns how many leases were expired.
    pub fn expire(&mut self, now: Instant) -> usize {
        let mut expired = 0;
        let keys: Vec<Key> = self.locks.keys().cloned().collect();
        for key in keys {
            let lock = self.locks.get_mut(&key).expect("key just listed");
            let before = lock.holders.len();
            lock.holders.retain(|h| h.expires > now);
            expired += before - lock.holders.len();
            if lock.holders.is_empty() {
                lock.exclusive = false;
            }
            Self::promote_waiters(
                &key,
                lock,
                &mut self.next_fencing,
                self.lease,
                now,
                &mut self.pending_grants,
            );
            if lock.holders.is_empty() && lock.queue.is_empty() {
                self.locks.remove(&key);
            }
        }
        expired
    }

    fn promote_waiters(
        key: &Key,
        lock: &mut KeyLock,
        next_fencing: &mut u64,
        lease: Duration,
        now: Instant,
        grants: &mut Vec<(Requester, Key, u64)>,
    ) {
        while let Some(front) = lock.queue.front() {
            let compatible = lock.holders.is_empty()
                || (!lock.exclusive && front.mode == LockMode::Shared);
            if !compatible {
                break;
            }
            let w = lock.queue.pop_front().expect("front just peeked");
            let fencing = *next_fencing;
            *next_fencing += 1;
            lock.exclusive = w.mode == LockMode::Exclusive;
            lock.holders.push(Holder {
                owner: w.requester.owner,
                fencing,
                expires: now + lease,
            });
            grants.push((w.requester, key.clone(), fencing));
            if lock.exclusive {
                break;
            }
        }
    }

    /// Drains grants produced by releases/expiries since the last call.
    pub fn take_pending_grants(&mut self) -> Vec<(Requester, Key, u64)> {
        std::mem::take(&mut self.pending_grants)
    }

    /// Number of keys with live lock state.
    pub fn active_keys(&self) -> usize {
        self.locks.len()
    }
}

/// Timer token used for the periodic expiry sweep.
const EXPIRY_TIMER: u64 = 1;

/// The DLM as a runtime actor.
pub struct DlmActor {
    table: LockTable,
    sweep_every: Duration,
}

impl DlmActor {
    /// Creates the actor; `lease` per grant, sweeping expiries every
    /// `sweep_every`.
    pub fn new(lease: Duration, sweep_every: Duration) -> Self {
        DlmActor {
            table: LockTable::new(lease, 1024),
            sweep_every,
        }
    }

    fn flush_grants(&mut self, ctx: &mut Context) {
        for (req, key, fencing) in self.table.take_pending_grants() {
            ctx.send(
                req.reply_to,
                NetMsg::Dlm(DlmMsg::Granted {
                    key,
                    rid: req.rid,
                    lease: self.table.lease(),
                    fencing,
                }),
            );
        }
    }
}

impl Actor for DlmActor {
    fn on_event(&mut self, ev: Event, ctx: &mut Context) {
        match ev {
            Event::Start => ctx.set_timer(self.sweep_every, EXPIRY_TIMER),
            Event::Timer {
                token: EXPIRY_TIMER,
            } => {
                self.table.expire(ctx.now());
                self.flush_grants(ctx);
                ctx.set_timer(self.sweep_every, EXPIRY_TIMER);
            }
            Event::Timer { .. } => {}
            Event::Msg { from, msg } => {
                // The lock table's bookkeeping is cheap but real; charge a
                // small fixed cost so the simulator sees DLM capacity.
                ctx.charge(Duration::from_micros(2));
                match msg {
                    NetMsg::Dlm(DlmMsg::Lock {
                        key,
                        owner,
                        rid,
                        mode,
                    }) => {
                        let requester = Requester {
                            owner,
                            rid,
                            reply_to: from,
                        };
                        match self.table.acquire(&key, requester, mode, ctx.now()) {
                            Acquire::Granted(fencing) => ctx.send(
                                from,
                                NetMsg::Dlm(DlmMsg::Granted {
                                    key,
                                    rid,
                                    lease: self.table.lease(),
                                    fencing,
                                }),
                            ),
                            Acquire::Queued => {} // answered on promotion
                            Acquire::Denied => {
                                ctx.send(from, NetMsg::Dlm(DlmMsg::Denied { key, rid }))
                            }
                        }
                    }
                    NetMsg::Dlm(DlmMsg::Unlock {
                        key,
                        owner,
                        fencing,
                    }) => {
                        self.table.release(&key, owner, fencing, ctx.now());
                        self.flush_grants(ctx);
                    }
                    _ => {} // not for us
                }
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bespokv_types::ClientId;

    fn req(owner: u32, seq: u32) -> Requester {
        Requester {
            owner: NodeId(owner),
            rid: RequestId::compose(ClientId(owner), seq),
            reply_to: Addr(owner),
        }
    }

    fn table() -> LockTable {
        LockTable::new(Duration::from_millis(100), 4)
    }

    const T0: Instant = Instant::ZERO;

    #[test]
    fn exclusive_excludes() {
        let mut t = table();
        let k = Key::from("k");
        assert!(matches!(
            t.acquire(&k, req(1, 0), LockMode::Exclusive, T0),
            Acquire::Granted(_)
        ));
        assert_eq!(
            t.acquire(&k, req(2, 0), LockMode::Exclusive, T0),
            Acquire::Queued
        );
        assert_eq!(
            t.acquire(&k, req(3, 0), LockMode::Shared, T0),
            Acquire::Queued
        );
    }

    #[test]
    fn shared_locks_coexist() {
        let mut t = table();
        let k = Key::from("k");
        assert!(matches!(
            t.acquire(&k, req(1, 0), LockMode::Shared, T0),
            Acquire::Granted(_)
        ));
        assert!(matches!(
            t.acquire(&k, req(2, 0), LockMode::Shared, T0),
            Acquire::Granted(_)
        ));
        // A writer queues behind readers...
        assert_eq!(
            t.acquire(&k, req(3, 0), LockMode::Exclusive, T0),
            Acquire::Queued
        );
        // ...and once a writer waits, new readers queue too (no writer
        // starvation).
        assert_eq!(
            t.acquire(&k, req(4, 0), LockMode::Shared, T0),
            Acquire::Queued
        );
    }

    #[test]
    fn release_promotes_in_fifo_order() {
        let mut t = table();
        let k = Key::from("k");
        let Acquire::Granted(f1) = t.acquire(&k, req(1, 0), LockMode::Exclusive, T0) else {
            panic!("grant");
        };
        t.acquire(&k, req(2, 0), LockMode::Exclusive, T0);
        t.acquire(&k, req(3, 0), LockMode::Exclusive, T0);
        t.release(&k, NodeId(1), f1, T0);
        let grants = t.take_pending_grants();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0.owner, NodeId(2));
    }

    #[test]
    fn release_promotes_reader_batch() {
        let mut t = table();
        let k = Key::from("k");
        let Acquire::Granted(f1) = t.acquire(&k, req(1, 0), LockMode::Exclusive, T0) else {
            panic!("grant");
        };
        t.acquire(&k, req(2, 0), LockMode::Shared, T0);
        t.acquire(&k, req(3, 0), LockMode::Shared, T0);
        t.release(&k, NodeId(1), f1, T0);
        let grants = t.take_pending_grants();
        assert_eq!(grants.len(), 2, "both readers promoted together");
    }

    #[test]
    fn lease_expiry_frees_the_lock() {
        let mut t = table();
        let k = Key::from("k");
        t.acquire(&k, req(1, 0), LockMode::Exclusive, T0);
        t.acquire(&k, req(2, 0), LockMode::Exclusive, T0);
        let late = T0 + Duration::from_millis(200);
        assert_eq!(t.expire(late), 1);
        let grants = t.take_pending_grants();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0.owner, NodeId(2));
    }

    #[test]
    fn stale_fencing_release_is_ignored() {
        let mut t = table();
        let k = Key::from("k");
        let Acquire::Granted(f1) = t.acquire(&k, req(1, 0), LockMode::Exclusive, T0) else {
            panic!("grant");
        };
        // Lease expires; node 2 takes the lock.
        let late = T0 + Duration::from_millis(200);
        t.expire(late);
        let Acquire::Granted(f2) = t.acquire(&k, req(2, 0), LockMode::Exclusive, late) else {
            panic!("grant 2");
        };
        assert!(f2 > f1);
        // Node 1 wakes up and releases with its stale token: no effect.
        t.release(&k, NodeId(1), f1, late);
        assert_eq!(
            t.acquire(&k, req(3, 0), LockMode::Exclusive, late),
            Acquire::Queued,
            "node 2 still holds the lock"
        );
    }

    #[test]
    fn queue_overflow_denies() {
        let mut t = table();
        let k = Key::from("k");
        t.acquire(&k, req(1, 0), LockMode::Exclusive, T0);
        for i in 2..6 {
            assert_eq!(
                t.acquire(&k, req(i, 0), LockMode::Exclusive, T0),
                Acquire::Queued
            );
        }
        assert_eq!(
            t.acquire(&k, req(9, 0), LockMode::Exclusive, T0),
            Acquire::Denied
        );
    }

    #[test]
    fn fencing_tokens_strictly_increase() {
        let mut t = table();
        let mut last = 0;
        for i in 0..10 {
            let k = Key::from(format!("k{i}"));
            let Acquire::Granted(f) = t.acquire(&k, req(1, i), LockMode::Exclusive, T0) else {
                panic!("grant");
            };
            assert!(f > last);
            last = f;
        }
    }

    #[test]
    fn state_garbage_collected() {
        let mut t = table();
        let k = Key::from("k");
        let Acquire::Granted(f) = t.acquire(&k, req(1, 0), LockMode::Exclusive, T0) else {
            panic!("grant");
        };
        assert_eq!(t.active_keys(), 1);
        t.release(&k, NodeId(1), f, T0);
        assert_eq!(t.active_keys(), 0);
    }

    #[test]
    fn actor_grants_and_releases_via_messages() {
        use bespokv_runtime::{NetworkModel, Simulation};
        use std::any::Any;

        struct Locker {
            dlm: Addr,
            granted: Vec<u64>,
        }
        impl Actor for Locker {
            fn on_event(&mut self, ev: Event, ctx: &mut Context) {
                match ev {
                    Event::Start => ctx.send(
                        self.dlm,
                        NetMsg::Dlm(DlmMsg::Lock {
                            key: Key::from("k"),
                            owner: NodeId(5),
                            rid: RequestId::compose(ClientId(5), 0),
                            mode: LockMode::Exclusive,
                        }),
                    ),
                    Event::Msg {
                        msg: NetMsg::Dlm(DlmMsg::Granted { key, fencing, .. }),
                        ..
                    } => {
                        self.granted.push(fencing);
                        ctx.send(
                            self.dlm,
                            NetMsg::Dlm(DlmMsg::Unlock {
                                key,
                                owner: NodeId(5),
                                fencing,
                            }),
                        );
                    }
                    _ => {}
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Simulation::new(NetworkModel::default());
        let dlm = sim.add_actor(Box::new(DlmActor::new(
            Duration::from_millis(500),
            Duration::from_millis(50),
        )));
        let locker = sim.add_actor(Box::new(Locker {
            dlm,
            granted: vec![],
        }));
        sim.run_for(Duration::from_millis(20));
        assert_eq!(sim.actor_mut::<Locker>(locker).granted.len(), 1);
    }
}
