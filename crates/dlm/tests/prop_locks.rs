//! Property-style tests on the lock table's safety invariants under
//! arbitrary acquire/release/expire interleavings. Seeded-random loops,
//! deterministic across runs.

use bespokv_dlm::{Acquire, LockTable, Requester};
use bespokv_proto::LockMode;
use bespokv_runtime::Addr;
use bespokv_types::{ClientId, Duration, Instant, Key, NodeId, RequestId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

#[derive(Clone, Debug)]
enum LockOp {
    Acquire { node: u8, key: u8, exclusive: bool },
    ReleaseHeld { index: usize },
    Advance { ms: u16 },
}

fn rand_ops(rng: &mut StdRng) -> Vec<LockOp> {
    let n = rng.gen_range(1..80);
    (0..n)
        .map(|_| match rng.gen_range(0..3) {
            0 => LockOp::Acquire {
                node: rng.gen_range(0..6u8),
                key: rng.gen_range(0..4u8),
                exclusive: rng.gen::<bool>(),
            },
            1 => LockOp::ReleaseHeld {
                index: rng.gen::<usize>(),
            },
            _ => LockOp::Advance {
                ms: rng.gen_range(1..400u16),
            },
        })
        .collect()
}

/// Mutual exclusion: at any instant, per key, either at most one
/// exclusive holder or any number of shared holders — never both;
/// fencing tokens are globally unique and increasing.
#[test]
fn mutual_exclusion_and_fencing() {
    let mut rng = StdRng::seed_from_u64(0x10c5);
    for _ in 0..128 {
        run_case(rand_ops(&mut rng));
    }
}

fn run_case(ops: Vec<LockOp>) {
    let lease = Duration::from_millis(100);
    let mut table = LockTable::new(lease, 16);
    let mut now = Instant::ZERO;
    let mut seq = 0u32;
    // (key, node, fencing, exclusive, grant_time) for live grants.
    let mut held: Vec<(u8, u8, u64, bool, Instant)> = Vec::new();
    let mut all_fencing: HashSet<u64> = HashSet::new();
    let mut max_fencing = 0u64;

    let collect_grants =
        |table: &mut LockTable, held: &mut Vec<(u8, u8, u64, bool, Instant)>, now: Instant,
         all: &mut HashSet<u64>, max: &mut u64, modes: &HashMap<RequestId, (u8, u8, bool)>| {
            for (req, _key, fencing) in table.take_pending_grants() {
                assert!(all.insert(fencing), "fencing token reuse: {fencing}");
                assert!(fencing > *max, "fencing not increasing");
                *max = fencing;
                if let Some(&(node, key, exclusive)) = modes.get(&req.rid) {
                    held.push((key, node, fencing, exclusive, now));
                }
            }
        };
    let mut modes: HashMap<RequestId, (u8, u8, bool)> = HashMap::new();

    for op in ops {
        match op {
            LockOp::Acquire { node, key, exclusive } => {
                seq += 1;
                let rid = RequestId::compose(ClientId(node as u32), seq);
                let requester = Requester {
                    owner: NodeId(node as u32),
                    rid,
                    reply_to: Addr(node as u32),
                };
                let mode = if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                modes.insert(rid, (node, key, exclusive));
                match table.acquire(&Key::from(format!("k{key}")), requester, mode, now) {
                    Acquire::Granted(f) => {
                        assert!(all_fencing.insert(f), "fencing reuse");
                        assert!(f > max_fencing);
                        max_fencing = f;
                        held.push((key, node, f, exclusive, now));
                    }
                    Acquire::Queued | Acquire::Denied => {}
                }
            }
            LockOp::ReleaseHeld { index } => {
                if held.is_empty() {
                    continue;
                }
                let (key, node, fencing, _, _) = held.remove(index % held.len());
                table.release(&Key::from(format!("k{key}")), NodeId(node as u32), fencing, now);
                collect_grants(&mut table, &mut held, now, &mut all_fencing, &mut max_fencing, &modes);
            }
            LockOp::Advance { ms } => {
                now += Duration::from_millis(ms as u64);
                table.expire(now);
                // Leases that passed their expiry are gone.
                held.retain(|&(_, _, _, _, granted)| {
                    now.saturating_since(granted) < lease
                });
                collect_grants(&mut table, &mut held, now, &mut all_fencing, &mut max_fencing, &modes);
            }
        }
        // Invariant: per key, exclusive grants are alone.
        let mut per_key: HashMap<u8, (usize, usize)> = HashMap::new();
        for &(key, _, _, exclusive, _) in &held {
            let e = per_key.entry(key).or_insert((0, 0));
            if exclusive {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        for (key, (ex, sh)) in per_key {
            assert!(
                ex == 0 || (ex == 1 && sh == 0),
                "key {key}: {ex} exclusive + {sh} shared held together"
            );
        }
    }
}
