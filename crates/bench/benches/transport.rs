//! Criterion: real TCP loopback vs in-process channel round trips.
//!
//! The live counterpart of the paper's DPDK experiment: the in-process
//! channel path is what a kernel-bypass transport removes from the
//! request path (syscalls, kernel buffers); TCP loopback is the socket
//! path. Also benches a whole request through the wire format over TCP.

use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::{TcpClient, TcpServer};
use bespokv_types::{ClientId, Key, RequestId, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::channel::bounded;
use std::sync::Arc;

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // In-process channel echo (kernel-bypass-class path).
    {
        let (tx_req, rx_req) = bounded::<u64>(64);
        let (tx_resp, rx_resp) = bounded::<u64>(64);
        let echo = std::thread::spawn(move || {
            while let Ok(v) = rx_req.recv() {
                if tx_resp.send(v).is_err() {
                    break;
                }
            }
        });
        group.bench_function("channel_roundtrip", |b| {
            b.iter(|| {
                tx_req.send(7).unwrap();
                std::hint::black_box(rx_resp.recv().unwrap());
            })
        });
        drop(tx_req);
        let _ = echo.join();
    }

    // TCP loopback echo through the full protocol stack (socket path).
    {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
            Arc::new(|req: Request| Response::ok(req.id, RespBody::Done)),
        )
        .unwrap();
        let mut client =
            TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();
        let mut seq = 0u32;
        group.bench_function("tcp_roundtrip", |b| {
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let req = Request::new(
                    RequestId::compose(ClientId(1), seq),
                    Op::Put {
                        key: Key::from("k"),
                        value: Value::from("v"),
                    },
                );
                std::hint::black_box(client.call(&req).unwrap());
            })
        });
        server.stop();
    }

    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
