//! Criterion microbenchmarks of the wire codecs and protocol parsers.

use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_proto::text::{RespParser, SsdbParser};
use bespokv_proto::wire::{Decode, Encode};
use bespokv_types::{ClientId, Key, RequestId, Value, VersionedValue};
use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};

fn sample_put() -> Request {
    Request::new(
        RequestId::compose(ClientId(1), 42),
        Op::Put {
            key: Key::from("user000000001234"),
            value: Value::from("x".repeat(32)),
        },
    )
}

fn sample_response() -> Response {
    Response::ok(
        RequestId::compose(ClientId(1), 42),
        RespBody::Value(VersionedValue::new(Value::from("y".repeat(32)), 7)),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let req = sample_put();
    group.bench_function("binary/encode_request", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            req.encode(&mut buf);
            std::hint::black_box(&buf);
        })
    });
    let encoded = req.to_bytes();
    group.bench_function("binary/decode_request", |b| {
        b.iter(|| {
            let r = Request::from_bytes(std::hint::black_box(&encoded)).unwrap();
            std::hint::black_box(r);
        })
    });

    let resp = sample_response();
    let resp_bytes = resp.to_bytes();
    group.bench_function("binary/decode_response", |b| {
        b.iter(|| {
            let r = Response::from_bytes(std::hint::black_box(&resp_bytes)).unwrap();
            std::hint::black_box(r);
        })
    });

    // Full-duplex parser paths (what a connection actually runs).
    group.bench_function("parser/binary_request_loop", |b| {
        let mut client = BinaryParser::new();
        let mut server = BinaryParser::new();
        let mut wire = BytesMut::new();
        b.iter(|| {
            wire.clear();
            client.encode_request(&req, &mut wire);
            server.feed(&wire);
            let got = server.next_request().unwrap().unwrap();
            std::hint::black_box(got);
        })
    });

    group.bench_function("parser/resp_request_loop", |b| {
        let mut server = RespParser::new(ClientId(2));
        let wire = b"*3\r\n$3\r\nSET\r\n$16\r\nuser000000001234\r\n$32\r\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\r\n";
        b.iter(|| {
            server.feed(wire);
            let got = server.next_request().unwrap().unwrap();
            std::hint::black_box(got);
        })
    });

    group.bench_function("parser/ssdb_request_loop", |b| {
        let mut server = SsdbParser::new(ClientId(3));
        let wire = b"3\nset\n16\nuser000000001234\n32\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n\n";
        b.iter(|| {
            server.feed(wire);
            let got = server.next_request().unwrap().unwrap();
            std::hint::black_box(got);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
