//! Criterion: ablations of the replication design choices (DESIGN.md §4).
//!
//! Measured as simulated end-to-end write latency on a single shard:
//! chain replication (MS+SC) vs asynchronous propagation (MS+EC) vs
//! shared-log ordering (AA+EC) vs DLM serialization (AA+SC), plus the
//! effect of replication factor on the chain.

use bespokv_cluster::script::{put, ScriptClient};
use bespokv_cluster::{ClusterSpec, SimCluster};
use bespokv_types::{Duration, Mode};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Simulated completion time of 100 sequential writes on one shard.
fn writes_virtual_time(mode: Mode, replication: u32) -> f64 {
    let mut cluster = SimCluster::build(ClusterSpec::new(1, replication, mode));
    let script: Vec<_> = (0..100).map(|i| put(&format!("k{i}"), "v")).collect();
    let client = cluster.add_script_client(script);
    cluster.run_for(Duration::from_secs(20));
    let c = cluster.sim.actor_mut::<ScriptClient>(client);
    assert!(c.done(), "script incomplete under {mode}");
    assert!(c.results.iter().all(|r| r.is_ok()));
    // Virtual seconds from first issue to last completion.
    c.completed_at.last().unwrap().as_secs_f64()
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // The wall time here is simulator execution cost; the *virtual* write
    // latencies per mode are printed once for the ablation record.
    for mode in Mode::ALL {
        println!(
            "ablation: 100 sequential writes under {mode} x3 replicas take {:.3} virtual ms",
            writes_virtual_time(mode, 3) * 1e3
        );
    }
    for repl in [1u32, 3, 5, 7] {
        println!(
            "ablation: chain length {repl}: {:.3} virtual ms for 100 writes",
            writes_virtual_time(Mode::MS_SC, repl) * 1e3
        );
    }

    group.bench_function("sim_msec_write_burst", |b| {
        b.iter_batched(
            || (),
            |_| std::hint::black_box(writes_virtual_time(Mode::MS_EC, 3)),
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
