//! Criterion microbenchmarks of the datalet engines.
//!
//! These are the calibration source for the simulator's per-engine cost
//! models (`bespokv_runtime::CostModel`): the *ratios* between engines on
//! puts/gets/scans are what the cluster experiments inherit.

use bespokv_datalet::{Datalet, EngineKind, DEFAULT_TABLE};
use bespokv_types::{Key, Value};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const KEYS: u64 = 50_000;

fn key(i: u64) -> Key {
    Key::from(format!("user{i:012}"))
}

fn loaded(kind: EngineKind) -> Arc<dyn Datalet> {
    let d = kind.build();
    for i in 0..KEYS {
        d.put(DEFAULT_TABLE, key(i), Value::from("v".repeat(32)), i)
            .unwrap();
    }
    d
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalet");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for kind in [
        EngineKind::THt,
        EngineKind::TMt,
        EngineKind::TLog,
        EngineKind::TLsm,
    ] {
        let d = loaded(kind);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(format!("{}/get", kind.tag()), |b| {
            b.iter_batched(
                || key(rng.gen_range(0..KEYS)),
                |k| {
                    let _ = d.get(DEFAULT_TABLE, &k);
                },
                BatchSize::SmallInput,
            )
        });
        let mut version = KEYS;
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(format!("{}/put", kind.tag()), |b| {
            b.iter_batched(
                || {
                    version += 1;
                    (key(rng.gen_range(0..KEYS)), Value::from("w".repeat(32)), version)
                },
                |(k, v, ver)| {
                    d.put(DEFAULT_TABLE, k, v, ver).unwrap();
                },
                BatchSize::SmallInput,
            )
        });
        if d.capabilities().range_query {
            let mut rng = StdRng::seed_from_u64(3);
            group.bench_function(format!("{}/scan100", kind.tag()), |b| {
                b.iter_batched(
                    || {
                        let start = rng.gen_range(0..KEYS - 200);
                        (key(start), key(start + 200))
                    },
                    |(lo, hi)| {
                        let _ = d.scan(DEFAULT_TABLE, &lo, &hi, 100);
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
