//! Reusable run configurations for the experiments.

use bespokv_cluster::metrics::RunStats;
use bespokv_cluster::{ClusterSpec, SimCluster};
use bespokv_datalet::EngineKind;
use bespokv_runtime::TransportProfile;
use bespokv_types::{ConsistencyLevel, Duration, Mode};
use bespokv_workloads::{Distribution, Mix, Workload, WorkloadConfig};

/// Experiment scale: quick smoke runs vs the committed full configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps and short windows (seconds per experiment).
    Quick,
    /// The configuration recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Warmup before the measurement window.
    pub fn warmup(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(150),
            Scale::Full => Duration::from_millis(300),
        }
    }

    /// Measurement window.
    pub fn window(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(400),
            Scale::Full => Duration::from_millis(900),
        }
    }

    /// Node counts for scalability sweeps (the paper uses 3-48).
    pub fn node_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![3, 12, 48],
            Scale::Full => vec![3, 6, 12, 24, 36, 48],
        }
    }

    /// Keyspace size. The paper loads 10 M tuples; the simulator scales
    /// this down (documented in EXPERIMENTS.md) — popularity shape, not
    /// keyspace size, drives the routing and caching behaviour measured
    /// here, and preloading is per-replica.
    pub fn keyspace(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }
}

/// One bespoKV throughput run.
#[derive(Clone)]
pub struct BespokvRun {
    /// Mode under test.
    pub mode: Mode,
    /// Number of nodes (shards = nodes / replication).
    pub nodes: u32,
    /// Replication factor (paper: 3).
    pub replication: u32,
    /// Engines per replica position.
    pub engines: Vec<EngineKind>,
    /// Workload mix.
    pub mix: Mix,
    /// Popularity distribution.
    pub distribution: Distribution,
    /// Network profile.
    pub transport: TransportProfile,
    /// Fraction of reads upgraded to per-request Strong (section VIII-D);
    /// 0.0 for plain runs.
    pub strong_read_fraction: f64,
    /// Scan length if the mix scans.
    pub scan_len: u32,
}

impl BespokvRun {
    /// The standard GCE-style run the scalability figures use.
    pub fn new(mode: Mode, nodes: u32, mix: Mix, distribution: Distribution) -> Self {
        BespokvRun {
            mode,
            nodes,
            replication: 3,
            engines: vec![EngineKind::THt],
            mix,
            distribution,
            transport: TransportProfile::cloud_1g(),
            strong_read_fraction: 0.0,
            scan_len: 100,
        }
    }

    /// Sets the engines.
    pub fn with_engines(mut self, engines: Vec<EngineKind>) -> Self {
        self.engines = engines;
        self
    }

    /// Sets the transport.
    pub fn with_transport(mut self, t: TransportProfile) -> Self {
        self.transport = t;
        self
    }

    /// Executes the run and returns merged client stats.
    pub fn execute(&self, scale: Scale) -> RunStats {
        let shards = (self.nodes / self.replication).max(1);
        let spec = ClusterSpec::new(shards, self.replication, self.mode)
            .with_engines(self.engines.clone())
            .with_transport(self.transport);
        let mut cluster = SimCluster::build(spec);
        let keyspace = scale.keyspace();
        let wl_cfg = WorkloadConfig {
            num_keys: keyspace,
            scan_len: self.scan_len,
            ..WorkloadConfig::small(self.mix, self.distribution)
        };
        let base = Workload::new(wl_cfg);
        // Preload so reads hit (paper loads the full tuple set first).
        let mut loader = base.fork(0x10AD);
        let items: Vec<_> = (0..keyspace)
            .map(|i| (loader.key_at(i), loader.value(i)))
            .collect();
        cluster.preload(items);
        let warmup = scale.warmup();
        // Enough closed-loop demand to saturate the servers.
        let clients = self.nodes.max(3) as usize;
        let concurrency = 16;
        for c in 0..clients {
            let mut w = base.fork(c as u64 + 1);
            let strong = self.strong_read_fraction;
            let mut tick = 0u64;
            cluster.add_client(
                Box::new(move || {
                    tick += 1;
                    let op = w.next_op();
                    let level = if strong > 0.0 && !op.is_write() {
                        // Deterministic interleave of strong reads.
                        if tick % 100 < (strong * 100.0) as u64 {
                            ConsistencyLevel::Strong
                        } else {
                            ConsistencyLevel::Eventual
                        }
                    } else {
                        ConsistencyLevel::Default
                    };
                    (op, String::new(), level)
                }),
                concurrency,
                warmup,
                Duration::from_millis(500),
            );
        }
        let window = scale.window();
        cluster.run_for(warmup + window);
        cluster.collect_stats(window)
    }
}
