//! Diagnostic probe: MS+EC slave-kill failover under a GET-only workload.
//!
//! Prints per-node read counts during the outage window and the throughput
//! timeline — the tool used to validate the Fig 16 measurement semantics
//! (see EXPERIMENTS.md).

use bespokv_cluster::{ClusterSpec, SimCluster};
use bespokv_coordinator::CoordConfig;
use bespokv_types::{ConsistencyLevel, Duration, Mode, NodeId};
use bespokv_workloads::{Distribution, Mix, Workload, WorkloadConfig};

fn main() {
    let spec = ClusterSpec::new(3, 3, Mode::MS_EC)
        .with_standbys(1)
        .with_coord(CoordConfig {
            failure_timeout: Duration::from_millis(1500),
            check_every: Duration::from_millis(500),
        });
    let mut cluster = SimCluster::build(spec);
    let wl_cfg = WorkloadConfig {
        num_keys: 5_000,
        ..WorkloadConfig::small(Mix::read_write(1.0), Distribution::Uniform)
    };
    let base = Workload::new(wl_cfg.clone());
    let mut loader = base.fork(0x10AD);
    cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
    for c in 0..18u64 {
        let mut w = base.fork(c + 1);
        cluster.add_client(
            Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
            8,
            Duration::ZERO,
            Duration::from_millis(250),
        );
    }
    cluster.run_for(Duration::from_secs(2));
    let before: Vec<u64> = cluster.datalets.iter().map(|d| d.stats().reads).collect();
    cluster.kill_node(NodeId(1));
    cluster.run_for(Duration::from_secs(1));
    let during: Vec<u64> = cluster.datalets.iter().map(|d| d.stats().reads).collect();
    for i in 0..before.len() {
        println!("node {i}: reads in outage window = {}", during[i] - before[i]);
    }
    cluster.run_for(Duration::from_secs(3));
    let stats = cluster.collect_stats(Duration::from_secs(6));
    println!(
        "errors={} completed={} mean={:.3}ms p99={:.3}ms",
        stats.errors,
        stats.completed,
        stats.mean_latency_ms(),
        stats.latency.percentile(99.0).as_millis_f64()
    );
    for (t, q) in stats.timeline.series() {
        println!("{t:>5.2}s {:>9.1} kqps", q / 1e3);
    }
}
