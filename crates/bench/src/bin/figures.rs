//! Regenerates every table and figure of the SC'18 evaluation.
//!
//! Usage:
//!   figures <experiment|all> [--full]
//!
//! Experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 sec8d fig16
//! fig17 table-eng. Default scale is quick; `--full` runs the committed
//! configuration recorded in EXPERIMENTS.md. CSVs land in `results/`.

use bespokv_bench::experiments as exp;
use bespokv_bench::{Report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "sec8d",
            "fig16", "fig17", "table-eng", "ablations",
        ]
    } else {
        which
    };
    let out_dir = std::path::PathBuf::from("results");
    type Runner = fn(Scale) -> Report;
    let runners: &[(&str, Runner)] = &[
        ("table1", exp::table1),
        ("fig6", exp::fig6),
        ("fig7", exp::fig7),
        ("fig8", exp::fig8),
        ("fig9", exp::fig9),
        ("fig10", exp::fig10),
        ("fig11", exp::fig11),
        ("fig12", exp::fig12),
        ("sec8d", exp::sec8d),
        ("fig16", exp::fig16),
        ("fig17", exp::fig17),
        ("table-eng", exp::table_eng),
        ("ablations", exp::ablations),
    ];
    let known: Vec<&str> = runners.iter().map(|(n, _)| *n).collect();
    let unknown: Vec<&&str> = which.iter().filter(|w| !known.contains(w)).collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {unknown:?}; known: {known:?} or `all`");
        std::process::exit(1);
    }
    for (name, f) in runners {
        if !which.contains(name) {
            continue;
        }
        eprintln!("running {name} ({scale:?}) ...");
        let t0 = std::time::Instant::now();
        let report = f(scale);
        print!("{}", report.to_text());
        match report.write_csv(&out_dir) {
            Ok(p) => println!("  csv: {} ({:.1?})\n", p.display(), t0.elapsed()),
            Err(e) => println!("  csv write failed: {e}\n"),
        }
    }
}
