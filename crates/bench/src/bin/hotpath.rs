//! Hot-path probe: measures the three legs of a request's journey —
//! wire codec, datalet table, TCP edge — and prints one JSON object.
//!
//! Used to produce `BENCH_hotpath.json` (before/after numbers for the
//! zero-copy codec, O(1) tHT bookkeeping, and coalesced TCP work). Run
//! with `cargo run --release --bin hotpath`.

use bespokv_datalet::{EngineKind, DEFAULT_TABLE};
use bespokv_proto::client::{Op, Request, RespBody, Response};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_proto::wire::{Decode, Encode};
use bespokv_runtime::tcp::{Handler, TcpClient, TcpServer};
use bespokv_types::{ClientId, Key, KvError, RequestId, Value, VersionedValue};
use bytes::BytesMut;
use std::sync::Arc;
use std::time::Instant;

fn sample_put(seq: u32) -> Request {
    Request::new(
        RequestId::compose(ClientId(1), seq),
        Op::Put {
            key: Key::from("user000000001234"),
            value: Value::from("x".repeat(32)),
        },
    )
}

fn sample_response() -> Response {
    Response::ok(
        RequestId::compose(ClientId(1), 42),
        RespBody::Value(VersionedValue::new(Value::from("y".repeat(32)), 7)),
    )
}

/// Times `f` in a calibrated loop; returns ns per call.
fn ns_per_call<R>(mut f: impl FnMut() -> R) -> f64 {
    // Warm up and estimate.
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < 50 {
        std::hint::black_box(f());
        calls += 1;
    }
    let per_call = (start.elapsed().as_nanos() as f64 / calls as f64).max(1.0);
    // Target ~200ms of measurement, 5 samples; report the median.
    let iters = ((40_000_000.0 / per_call) as u64).clamp(1, 50_000_000);
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_codec() -> String {
    let req = sample_put(42);
    let mut buf = BytesMut::with_capacity(256);
    let encode_ns = ns_per_call(|| {
        buf.clear();
        req.encode(&mut buf);
    });
    let encoded = req.to_bytes();
    let decode_req_ns = ns_per_call(|| Request::from_bytes(std::hint::black_box(&encoded)).unwrap());
    let resp_bytes = sample_response().to_bytes();
    let decode_resp_ns =
        ns_per_call(|| Response::from_bytes(std::hint::black_box(&resp_bytes)).unwrap());

    // Full parser loop: frame + encode on one side, feed + decode on the other.
    let mut client = BinaryParser::new();
    let mut server = BinaryParser::new();
    let mut wire = BytesMut::new();
    let parser_loop_ns = ns_per_call(|| {
        wire.clear();
        client.encode_request(&req, &mut wire);
        server.feed(&wire);
        server.next_request().unwrap().unwrap()
    });

    format!(
        "{{\"encode_request_ns\":{encode_ns:.1},\"decode_request_ns\":{decode_req_ns:.1},\
         \"decode_response_ns\":{decode_resp_ns:.1},\"parser_request_loop_ns\":{parser_loop_ns:.1}}}"
    )
}

fn bench_tht() -> String {
    let engine = EngineKind::THt.build();
    const KEYS: u64 = 100_000;
    for i in 0..KEYS {
        engine
            .put(
                DEFAULT_TABLE,
                Key::from(format!("user{i:012}")),
                Value::from("w".repeat(32)),
                1,
            )
            .unwrap();
    }
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::from(format!("user{i:012}"))).collect();

    let mut i = 0usize;
    let get_ns = ns_per_call(|| {
        i = (i + 7) % keys.len();
        engine.get(DEFAULT_TABLE, &keys[i]).unwrap()
    });
    let mut ver = 2u64;
    let mut j = 0usize;
    let put_ns = ns_per_call(|| {
        j = (j + 13) % keys.len();
        ver += 1;
        engine
            .put(DEFAULT_TABLE, keys[j].clone(), Value::from("z".repeat(32)), ver)
            .unwrap()
    });
    let live_len_ns = ns_per_call(|| engine.len());
    let stats_ns = ns_per_call(|| engine.stats());

    // Multithreaded mixed workload: 4 threads, 90/10 get/put, 200k ops each.
    let eng = Arc::clone(&engine);
    let t0 = Instant::now();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let eng = Arc::clone(&eng);
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut v = 1000 + t;
                for n in 0..200_000u64 {
                    let k = &keys[((n * 31 + t * 7919) % KEYS) as usize];
                    if n % 10 == 0 {
                        v += 4;
                        eng.put(DEFAULT_TABLE, k.clone(), Value::from("m".repeat(32)), v)
                            .unwrap();
                    } else {
                        let _ = eng.get(DEFAULT_TABLE, k);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mt_ops_per_sec = 800_000.0 / t0.elapsed().as_secs_f64();

    format!(
        "{{\"get_ns\":{get_ns:.1},\"put_ns\":{put_ns:.1},\"live_len_ns\":{live_len_ns:.1},\
         \"stats_ns\":{stats_ns:.1},\"mt_4thread_ops_per_sec\":{mt_ops_per_sec:.0}}}"
    )
}

fn kv_handler() -> Arc<Handler> {
    let engine = EngineKind::THt.build();
    Arc::new(move |req: Request| {
        let result = match &req.op {
            Op::Put { key, value } => {
                let version = req.id.raw();
                engine
                    .put(DEFAULT_TABLE, key.clone(), value.clone(), version)
                    .map(|_| RespBody::Done)
            }
            Op::Get { key } => engine.get(DEFAULT_TABLE, key).map(RespBody::Value),
            _ => Err(KvError::Rejected("unsupported".into())),
        };
        Response {
            id: req.id,
            result,
        }
    })
}

fn bench_tcp() -> String {
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>),
        kv_handler(),
    )
    .unwrap();
    let mut client = TcpClient::connect(server.local_addr(), Box::new(BinaryParser::new())).unwrap();

    // Sequential RTT distribution.
    let mut rtts_us: Vec<f64> = Vec::with_capacity(20_000);
    for seq in 0..20_000u32 {
        let req = sample_put(seq);
        let t = Instant::now();
        client.call(&req).unwrap();
        rtts_us.push(t.elapsed().as_nanos() as f64 / 1e3);
    }
    rtts_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = rtts_us[rtts_us.len() / 2];
    let p99 = rtts_us[rtts_us.len() * 99 / 100];

    // Pipelined throughput: batches of 64 for ~1s.
    let reqs: Vec<Request> = (0..64u32).map(sample_put).collect();
    let t0 = Instant::now();
    let mut done = 0u64;
    while t0.elapsed().as_millis() < 1000 {
        let resps = client.call_pipelined(&reqs).unwrap();
        assert_eq!(resps.len(), reqs.len());
        done += reqs.len() as u64;
    }
    let pipelined_qps = done as f64 / t0.elapsed().as_secs_f64();
    server.stop();

    format!(
        "{{\"rtt_p50_us\":{p50:.1},\"rtt_p99_us\":{p99:.1},\"pipelined_qps\":{pipelined_qps:.0}}}"
    )
}

fn main() {
    let codec = bench_codec();
    let tht = bench_tht();
    let tcp = bench_tcp();
    println!("{{\"codec\":{codec},\"tht\":{tht},\"tcp\":{tcp}}}");
}
