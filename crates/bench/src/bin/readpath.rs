//! Read-path probe: multi-threaded GET throughput over the live TCP edge,
//! actor-routed baseline vs the shared-datalet fast path.
//!
//! Stands up a real `LiveCluster` (MS+SC, one chain of three), loads keys
//! through the head's edge, then hammers the *tail* edge with concurrent
//! pipelined GET clients twice: once with every request relayed through
//! the controlet actor (`fast_path = false`, the pre-PR serving model)
//! and once with worker threads serving gated reads straight from the
//! shared datalet. Prints one JSON object; used to produce
//! `BENCH_readpath.json`. Run with `cargo run --release --bin readpath`.

use bespokv_cluster::{ClusterSpec, LiveCluster, NodeEdge};
use bespokv_proto::client::{Op, Request, RespBody};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_types::{ClientId, Key, Mode, NodeId, RequestId, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: u32 = 2048;
const PIPELINE: usize = 64;
const MEASURE_MS: u64 = 800;

fn key(i: u32) -> Key {
    Key::from(format!("user{i:012}"))
}

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

/// Loads the dataset through the head's edge (writes always take the
/// actor path) with deep pipelining so chain group-commit windows overlap.
fn load(head: &TcpServer) {
    let mut client =
        TcpClient::connect(head.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut seq = 0u32;
    for chunk in (0..KEYS).collect::<Vec<_>>().chunks(PIPELINE) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|&i| {
                seq += 1;
                Request::new(
                    RequestId::compose(ClientId(9000), seq),
                    Op::Put {
                        key: key(i),
                        value: Value::from(format!("v{i:028}")),
                    },
                )
            })
            .collect();
        for resp in client.call_pipelined(&reqs).unwrap() {
            assert!(resp.result.is_ok(), "load failed: {:?}", resp.result);
        }
    }
}

/// `threads` closed-loop pipelined GET clients against `addr` for
/// [`MEASURE_MS`]; returns aggregate ops/sec. Every response is checked —
/// a throughput number built on errors would be meaningless.
fn get_throughput(addr: std::net::SocketAddr, threads: u32) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client =
                    TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                let mut done = 0u64;
                let mut seq = 0u32;
                let mut base = t * 7919;
                while !stop.load(Ordering::Acquire) {
                    let reqs: Vec<Request> = (0..PIPELINE as u32)
                        .map(|n| {
                            seq += 1;
                            base = base.wrapping_mul(48271) % 0x7fff_ffff;
                            Request::new(
                                RequestId::compose(ClientId(9100 + t), seq),
                                Op::Get {
                                    key: key((base.wrapping_add(n * 31)) % KEYS),
                                },
                            )
                        })
                        .collect();
                    for resp in client.call_pipelined(&reqs).unwrap() {
                        match resp.result {
                            Ok(RespBody::Value(_)) => done += 1,
                            other => panic!("GET failed: {other:?}"),
                        }
                    }
                }
                done
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(MEASURE_MS));
    stop.store(true, Ordering::Release);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Sequential (unpipelined) GET RTT percentiles in microseconds.
fn get_rtt(addr: std::net::SocketAddr) -> (f64, f64) {
    let mut client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
    let mut rtts: Vec<f64> = Vec::with_capacity(5000);
    for seq in 0..5000u32 {
        let req = Request::new(
            RequestId::compose(ClientId(9200), seq),
            Op::Get { key: key(seq % KEYS) },
        );
        let t = Instant::now();
        client.call(&req).unwrap();
        rtts.push(t.elapsed().as_nanos() as f64 / 1e3);
    }
    rtts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (rtts[rtts.len() / 2], rtts[rtts.len() * 99 / 100])
}

fn main() {
    let mut cluster = LiveCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_SC).with_fast_path(),
    );
    let table = Arc::clone(cluster.fast_path().expect("fast path enabled"));

    // One edge per chain end: writes enter at the head, reads at the tail
    // (the strong-read replica under MS+SC).
    let head_edge = NodeEdge::new(
        NodeId(0),
        Arc::clone(&table),
        cluster.rt.register_mailbox(),
        false,
    );
    let tail_edge = NodeEdge::new(
        NodeId(2),
        Arc::clone(&table),
        cluster.rt.register_mailbox(),
        false,
    );
    let pool = ServerOptions {
        worker_threads: Some(8),
        ..ServerOptions::default()
    };
    let head_srv = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        head_edge.handler(),
        pool.clone(),
    )
    .unwrap();
    let tail_srv = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        tail_edge.handler(),
        pool,
    )
    .unwrap();

    load(&head_srv);
    let addr = tail_srv.local_addr();

    // Baseline: every GET relayed to the single-threaded controlet actor.
    let base_1t = get_throughput(addr, 1);
    let base_4t = get_throughput(addr, 4);
    let (base_p50, base_p99) = get_rtt(addr);
    assert_eq!(table.total_hits(), 0, "baseline must not touch fast path");

    // Fast path: tail worker threads serve gated reads from the datalet.
    tail_edge.set_fast_path(true);
    let fast_1t = get_throughput(addr, 1);
    let fast_4t = get_throughput(addr, 4);
    let (fast_p50, fast_p99) = get_rtt(addr);
    let hits = table.total_hits();
    let fallbacks = table.total_fallbacks();
    assert!(hits > 0, "fast path never engaged");

    drop(head_srv);
    drop(tail_srv);
    drop(head_edge);
    drop(tail_edge);
    cluster.rt.shutdown();

    println!(
        "{{\"baseline\":{{\"get_qps_1thread\":{base_1t:.0},\"get_qps_4thread\":{base_4t:.0},\
         \"rtt_p50_us\":{base_p50:.1},\"rtt_p99_us\":{base_p99:.1}}},\
         \"fast_path\":{{\"get_qps_1thread\":{fast_1t:.0},\"get_qps_4thread\":{fast_4t:.0},\
         \"rtt_p50_us\":{fast_p50:.1},\"rtt_p99_us\":{fast_p99:.1},\
         \"hits\":{hits},\"fallbacks\":{fallbacks}}},\
         \"speedup_4thread\":{:.2}}}",
        fast_4t / base_4t
    );
}
