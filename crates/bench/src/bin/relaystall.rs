//! Relay-stall bench: healthy-node goodput while a peer controlet is
//! wedged solid for 2 seconds under the reactor edge.
//!
//! The gray-failure scenario the nonblocking relay exists for: node 0's
//! edge relays every request into a controlet that stops making progress
//! (alive, accepting TCP, heartbeating — just not working). Before this
//! PR each parked relay held a server thread, so one wedged node could
//! absorb the whole reactor pool and take healthy traffic down with it.
//! Now a parked relay is a table entry: the bench wedges node 0, parks a
//! burst of relays on it, and measures node 1's read goodput during the
//! wedge against its own unwedged baseline — the PR's acceptance floor
//! is a 0.9x ratio with zero extra threads blocked.
//!
//! Produces `BENCH_relaystall.json` on stdout. Run with
//! `cargo run --release --bin relaystall > BENCH_relaystall.json`.

use bespokv_cluster::edge::{EdgeOverload, NodeEdge};
use bespokv_cluster::{ClusterSpec, LiveCluster};
use bespokv_proto::client::{Op, Request, Response};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{ServerOptions, TcpClient, TcpServer, TransportKind};
use bespokv_types::{
    ClientId, Duration, Key, Mode, NodeId, OverloadCounters, RequestId, Value,
};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;
use std::time::Instant;

/// Client threads driving the healthy node.
const THREADS: usize = 4;
/// Pipeline depth per client thread.
const DEPTH: usize = 32;
/// Keys in the working set.
const KEYS: usize = 16;
/// Measurement window, chosen to fit inside the 2 s wedge.
const MEASURE_MS: u64 = 1_500;
/// Relays parked on the wedged node during the measurement.
const PARKED: usize = 64;
/// The wedge itself.
const WEDGE_MS: u64 = 2_000;

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

fn req(client: u32, seq: u32, op: Op) -> Request {
    Request::new(RequestId::compose(ClientId(client), seq), op)
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

fn reactor_edge(
    cluster: &mut LiveCluster,
    node: u32,
    fast_path: bool,
    counters: Arc<OverloadCounters>,
) -> (NodeEdge, TcpServer) {
    let table = Arc::clone(cluster.fast_path().expect("fast path enabled"));
    let edge = NodeEdge::new(NodeId(node), table, cluster.rt.register_mailbox(), fast_path)
        .with_overload(EdgeOverload {
            relay_cap: 0,
            relay_timeout: Duration::from_secs(5),
            relay_stall_threshold: Duration::from_millis(500),
            counters,
            clock: cluster.rt.clock(),
        });
    let server = TcpServer::bind_deferred(
        "127.0.0.1:0",
        parser_factory(),
        edge.defer_handler(),
        ServerOptions {
            transport: Some(TransportKind::Reactor),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    (edge, server)
}

/// Drives pipelined GETs at `addr` from THREADS threads for the window;
/// returns completed ops.
fn drive(addr: std::net::SocketAddr, window_ms: u64) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                let mut done = 0u64;
                let mut seq = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<Request> = (0..DEPTH)
                        .map(|_| {
                            seq += 1;
                            req(
                                100 + t as u32,
                                seq,
                                Op::Get { key: Key::from(format!("k{}", seq as usize % KEYS)) },
                            )
                        })
                        .collect();
                    let resps = c.call_pipelined(&batch).expect("healthy pipeline");
                    done += resps.iter().filter(|r| r.result.is_ok()).count() as u64;
                }
                done
            })
        })
        .collect();
    std::thread::sleep(StdDuration::from_millis(window_ms));
    stop.store(true, Ordering::Relaxed);
    workers.into_iter().map(|w| w.join().unwrap()).sum()
}

fn send_raw(addr: std::net::SocketAddr, req: &Request) -> std::net::TcpStream {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut parser = BinaryParser::new();
    let mut buf = BytesMut::new();
    parser.encode_request(req, &mut buf);
    s.write_all(&buf).unwrap();
    s
}

fn read_response(s: &mut std::net::TcpStream) -> Response {
    let mut parser = BinaryParser::new();
    let mut buf = [0u8; 256];
    loop {
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before replying");
        parser.feed(&buf[..n]);
        if let Some(resp) = parser.next_response().unwrap() {
            return resp;
        }
    }
}

fn main() {
    let counters = Arc::new(OverloadCounters::new());
    let mut cluster = LiveCluster::build(ClusterSpec::new(1, 3, Mode::AA_EC).with_fast_path());
    let (wedged_edge, wedged_srv) =
        reactor_edge(&mut cluster, 0, false, Arc::clone(&counters));
    let (_healthy_edge, healthy_srv) =
        reactor_edge(&mut cluster, 1, true, Arc::clone(&counters));

    // Seed through the healthy node (AA accepts writes anywhere).
    let mut seeder =
        TcpClient::connect(healthy_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    for i in 0..KEYS as u32 {
        let resp = seeder
            .call(&req(99, i, Op::Put {
                key: Key::from(format!("k{i}")),
                value: Value::from("v"),
            }))
            .unwrap();
        assert!(resp.result.is_ok(), "seed put: {:?}", resp.result);
    }

    // Warm-up, then the unwedged baseline.
    drive(healthy_srv.local_addr(), 300);
    let baseline_ops = drive(healthy_srv.local_addr(), MEASURE_MS);
    let threads_before = thread_count();

    // Wedge node 0, park a relay burst on it, measure again mid-wedge.
    cluster.wedge_node(NodeId(0), StdDuration::from_millis(WEDGE_MS));
    let mut held: Vec<std::net::TcpStream> = (0..PARKED)
        .map(|i| {
            send_raw(
                wedged_srv.local_addr(),
                &req(98, i as u32, Op::Get { key: Key::from("k0") }),
            )
        })
        .collect();
    let deadline = Instant::now() + StdDuration::from_secs(2);
    while wedged_edge.parked() < PARKED && Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let parked_mid_wedge = wedged_edge.parked();
    let wedged_ops = drive(healthy_srv.local_addr(), MEASURE_MS);
    let threads_during = thread_count();

    // The wedge releases inside the 5 s relay budget: every parked relay
    // must complete rather than leak.
    let mut relays_completed = 0usize;
    for s in held.iter_mut() {
        if read_response(s).result.is_ok() {
            relays_completed += 1;
        }
    }

    let baseline_qps = baseline_ops as f64 / (MEASURE_MS as f64 / 1000.0);
    let wedged_qps = wedged_ops as f64 / (MEASURE_MS as f64 / 1000.0);
    let snap = counters.snapshot();
    println!(
        "{{\"threads\":{THREADS},\"depth\":{DEPTH},\"measure_ms\":{MEASURE_MS},\
         \"wedge_ms\":{WEDGE_MS},\"parked_target\":{PARKED},\
         \"parked_mid_wedge\":{parked_mid_wedge},\
         \"relays_completed\":{relays_completed},\
         \"baseline_qps\":{baseline_qps:.0},\"wedged_qps\":{wedged_qps:.0},\
         \"goodput_ratio\":{:.3},\
         \"threads_before\":{threads_before},\"threads_during\":{threads_during},\
         \"relay_expired\":{},\"stall_trips\":{},\"stall_fastfails\":{}}}",
        wedged_qps / baseline_qps,
        snap.relay_expired,
        snap.stall_trips,
        snap.stall_fastfails,
    );

    drop(wedged_srv);
    drop(healthy_srv);
    cluster.rt.shutdown();
}
