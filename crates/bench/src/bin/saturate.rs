//! Saturation probe: graceful degradation of the live TCP edge under
//! offered load past capacity.
//!
//! Stands up a real `LiveCluster` (MS+SC, one chain of three) with the
//! full overload-protection stack armed — bounded worker-pool queue,
//! per-read pipeline cap, bounded edge relay table, actor mailbox caps,
//! deadline rejection — then drives the *write* path (every PUT takes the
//! single-threaded controlet actor) in three phases:
//!
//! 1. **peak**: moderate closed-loop load that fits capacity, to measure
//!    the achievable goodput baseline;
//! 2. **overload**: roughly double the client concurrency and pipeline
//!    depth. A protected server must keep goodput (accepted, committed
//!    PUTs per second) within 70% of peak, keep the latency of *accepted*
//!    requests bounded, and turn the excess into explicit
//!    `KvError::Overloaded` replies — never silent drops, never collapse;
//! 3. **deadline**: a burst stamped with already-expired deadlines, which
//!    must be rejected at the edge to the last request without touching
//!    the actor.
//!
//! Prints one JSON object; used to produce `BENCH_saturate.json`. Run
//! with `cargo run --release --bin saturate`.

use bespokv_cluster::{ClusterSpec, EdgeOverload, FastPathTable, LiveCluster, NodeEdge};
use bespokv_proto::client::{Op, Request};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_types::{ClientId, Key, KvError, Mode, NodeId, OverloadConfig, RequestId, Value};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: u32 = 2048;
const MEASURE_MS: u64 = 800;
/// Server-side cap on requests dispatched from one socket read.
const PIPELINE_CAP: usize = 32;

fn key(i: u32) -> Key {
    Key::from(format!("user{i:012}"))
}

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

/// One phase of closed-loop PUT load: `threads` clients, each pipelining
/// `depth` requests per round trip, for [`MEASURE_MS`]. Overloaded replies
/// are the protocol working as designed and are counted, not failed on.
struct PhaseResult {
    ok: u64,
    shed: u64,
    other_err: u64,
    secs: f64,
}

impl PhaseResult {
    fn goodput(&self) -> f64 {
        self.ok as f64 / self.secs
    }
    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.secs
    }
}

fn put_load(addr: std::net::SocketAddr, threads: u32, depth: usize, seq: &AtomicU32) -> PhaseResult {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let base_seq = seq.fetch_add(1_000_000, Ordering::Relaxed);
            std::thread::spawn(move || {
                let mut client =
                    TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
                let mut n = base_seq;
                while !stop.load(Ordering::Acquire) {
                    let reqs: Vec<Request> = (0..depth)
                        .map(|_| {
                            n += 1;
                            Request::new(
                                RequestId::compose(ClientId(9100 + t), n),
                                Op::Put {
                                    key: key(n % KEYS),
                                    value: Value::from(format!("v{n:028}")),
                                },
                            )
                        })
                        .collect();
                    for resp in client.call_pipelined(&reqs).unwrap() {
                        match resp.result {
                            Ok(_) => ok += 1,
                            Err(KvError::Overloaded) => shed += 1,
                            Err(_) => other += 1,
                        }
                    }
                }
                (ok, shed, other)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(MEASURE_MS));
    stop.store(true, Ordering::Release);
    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
    for w in workers {
        let (o, s, e) = w.join().unwrap();
        ok += o;
        shed += s;
        other += e;
    }
    PhaseResult {
        ok,
        shed,
        other_err: other,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Sequential unpipelined PUT probe running alongside an overload phase:
/// records the RTT of every *accepted* request, because the claim under
/// test is that admitted work keeps bounded latency while the excess is
/// shed.
fn probe_accepted_rtts(
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<f64>> {
    std::thread::spawn(move || {
        let mut client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
        let mut rtts = Vec::new();
        let mut seq = 0u32;
        while !stop.load(Ordering::Acquire) {
            seq += 1;
            let req = Request::new(
                RequestId::compose(ClientId(9300), seq),
                Op::Put {
                    key: key(seq % KEYS),
                    value: Value::from("probe"),
                },
            );
            let t = Instant::now();
            if let Ok(resp) = client.call(&req) {
                if resp.result.is_ok() {
                    rtts.push(t.elapsed().as_nanos() as f64 / 1e6);
                }
            } else {
                break;
            }
        }
        rtts
    })
}

fn percentile(sorted: &[f64], p: usize) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn main() {
    let ocfg = OverloadConfig {
        pipeline_cap: PIPELINE_CAP,
        ..OverloadConfig::default()
    };
    let mut cluster = LiveCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_SC).with_overload(ocfg),
    );
    let counters = cluster.overload_counters();

    // Deadlines are stamped and checked against this one clock; the edge
    // gets the same closure the client uses.
    let epoch = Instant::now();
    let clock = Arc::new(move || bespokv_types::Instant(epoch.elapsed().as_nanos() as u64));

    // No fast path: every request takes the actor, which is the resource
    // being saturated.
    let table = Arc::new(FastPathTable::new(cluster.map.clone()));
    let head_edge = NodeEdge::new(
        NodeId(0),
        Arc::clone(&table),
        cluster.rt.register_mailbox(),
        false,
    )
    .with_overload(EdgeOverload {
        relay_cap: ocfg.relay_cap,
        relay_timeout: ocfg.relay_timeout,
        relay_stall_threshold: ocfg.relay_stall_threshold,
        counters: Arc::clone(&counters),
        clock: Arc::clone(&clock) as Arc<dyn Fn() -> bespokv_types::Instant + Send + Sync>,
    });
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        head_edge.handler(),
        ServerOptions {
            worker_threads: Some(4),
            max_connections: Some(ocfg.max_connections),
            pipeline_cap: Some(PIPELINE_CAP),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let seq = AtomicU32::new(0);

    // Phase 1 — peak: pipelines under the server cap, light concurrency.
    let peak = put_load(addr, 2, 16, &seq);
    assert!(peak.ok > 0, "peak phase made no progress");

    // Phase 2 — overload: ~2x the threads, 4x the pipeline depth. The
    // probe rides along to measure accepted-request latency.
    let probe_stop = Arc::new(AtomicBool::new(false));
    let probe = probe_accepted_rtts(addr, Arc::clone(&probe_stop));
    let over = put_load(addr, 4, 128, &seq);
    probe_stop.store(true, Ordering::Release);
    let mut rtts = probe.join().unwrap();
    rtts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&rtts, 50), percentile(&rtts, 99));

    // Phase 3 — deadline: a burst stamped with an already-passed deadline
    // must be shed at the edge to the last request.
    let expired_before = counters.snapshot().deadline_expired;
    let mut dl_client = TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
    let stamp = clock();
    let dl_reqs: Vec<Request> = (0..16u32)
        .map(|n| {
            Request::new(
                RequestId::compose(ClientId(9400), n),
                Op::Put {
                    key: key(n),
                    value: Value::from("late"),
                },
            )
            .with_deadline(stamp)
        })
        .collect();
    let dl_resps = dl_client.call_pipelined(&dl_reqs).unwrap();
    let dl_shed = dl_resps
        .iter()
        .filter(|r| matches!(r.result, Err(KvError::Overloaded)))
        .count();
    assert_eq!(dl_shed, dl_reqs.len(), "expired requests must all be shed");
    let expired = counters.snapshot().deadline_expired - expired_before;
    assert_eq!(expired as usize, dl_reqs.len(), "every expiry must be counted");

    let stats = server.stats();
    let snap = counters.snapshot();
    let ratio = over.goodput() / peak.goodput();

    // The acceptance bar: under ~2x load the server keeps at least 70% of
    // peak goodput, sheds the excess explicitly, and accepted requests
    // keep bounded latency.
    assert!(
        ratio >= 0.7,
        "goodput collapsed under overload: {:.0}/s vs peak {:.0}/s",
        over.goodput(),
        peak.goodput()
    );
    assert!(over.shed > 0, "overload phase never shed — not saturated");
    assert!(
        p99 < 1500.0,
        "accepted-request p99 unbounded under overload: {p99:.1}ms"
    );

    drop(server);
    drop(head_edge);
    cluster.rt.shutdown();

    println!(
        "{{\"peak\":{{\"goodput_qps\":{:.0},\"shed_per_sec\":{:.0}}},\
         \"overload\":{{\"goodput_qps\":{:.0},\"shed_per_sec\":{:.0},\"ok\":{},\"shed\":{},\
         \"other_err\":{},\"accepted_p50_ms\":{p50:.2},\"accepted_p99_ms\":{p99:.2}}},\
         \"goodput_ratio\":{ratio:.3},\
         \"deadline\":{{\"sent\":{},\"shed\":{dl_shed}}},\
         \"server\":{{\"accepted\":{},\"refused\":{},\"pipeline_shed\":{},\"pool_shed\":{}}},\
         \"counters\":{{\"mailbox_shed\":{},\"relay_shed\":{},\"deadline_expired\":{},\
         \"head_window_shed\":{},\"slow_slave_trims\":{},\"slow_slave_resyncs\":{}}}}}",
        peak.goodput(),
        peak.shed_rate(),
        over.goodput(),
        over.shed_rate(),
        over.ok,
        over.shed,
        over.other_err,
        dl_reqs.len(),
        stats.connections_accepted,
        stats.connections_refused,
        stats.pipeline_shed,
        stats.pool_shed,
        snap.mailbox_shed,
        snap.relay_shed,
        snap.deadline_expired,
        snap.head_window_shed,
        snap.slow_slave_trims,
        snap.slow_slave_resyncs,
    );
}
