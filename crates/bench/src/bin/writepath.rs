//! Write-path probe: multi-threaded PUT throughput over the live TCP edge,
//! actor-routed baseline vs the flat-combining write path.
//!
//! Stands up a real `LiveCluster` (MS+SC, one chain of three) and hammers
//! the *head* edge with concurrent pipelined PUT clients twice: once with
//! every write relayed through the controlet actor one message at a time
//! (`write_combine = false`, the pre-PR ingress model) and once with TCP
//! worker threads publishing writes into the head's op log, where one
//! combiner applies them in batches and hands the actor a single
//! `ChainPutBatch` per combine. Each (mode, threads) point is the median
//! of three runs. Prints one JSON object; used to produce
//! `BENCH_writepath.json`. Run with `cargo run --release --bin writepath`.

use bespokv_cluster::{ClusterSpec, LiveCluster, NodeEdge};
use bespokv_proto::client::{Op, Request};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_types::{ClientId, Key, Mode, NodeId, RequestId, Value};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: u32 = 2048;
const PIPELINE: usize = 64;
const MEASURE_MS: u64 = 800;
const RUNS: usize = 3;

/// Every connection draws a fresh client id: the head's reply cache dedups
/// by `RequestId = (client, seq)`, so ids must never be reused across runs
/// or a repeat would be answered from the cache instead of measured.
static NEXT_CLIENT: AtomicU32 = AtomicU32::new(9100);

fn key(i: u32) -> Key {
    Key::from(format!("user{i:012}"))
}

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

/// `threads` closed-loop pipelined PUT clients against `addr` for
/// [`MEASURE_MS`]; returns aggregate ops/sec. Every response is checked —
/// a throughput number built on errors would be meaningless.
fn put_throughput(addr: std::net::SocketAddr, threads: u32) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let client_id = ClientId(NEXT_CLIENT.fetch_add(1, Ordering::Relaxed));
                let mut client =
                    TcpClient::connect(addr, Box::new(BinaryParser::new())).unwrap();
                let mut done = 0u64;
                let mut seq = 0u32;
                let mut base = t * 7919;
                while !stop.load(Ordering::Acquire) {
                    let reqs: Vec<Request> = (0..PIPELINE as u32)
                        .map(|n| {
                            seq += 1;
                            base = base.wrapping_mul(48271) % 0x7fff_ffff;
                            let i = (base.wrapping_add(n * 31)) % KEYS;
                            Request::new(
                                RequestId::compose(client_id, seq),
                                Op::Put {
                                    key: key(i),
                                    value: Value::from(format!("v{i:028}")),
                                },
                            )
                        })
                        .collect();
                    for resp in client.call_pipelined(&reqs).unwrap() {
                        match resp.result {
                            Ok(_) => done += 1,
                            Err(e) => panic!("PUT failed: {e:?}"),
                        }
                    }
                }
                done
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(MEASURE_MS));
    stop.store(true, Ordering::Release);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Median of [`RUNS`] throughput runs at one (mode, threads) point.
fn median_qps(addr: std::net::SocketAddr, threads: u32) -> f64 {
    let mut runs: Vec<f64> = (0..RUNS).map(|_| put_throughput(addr, threads)).collect();
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[runs.len() / 2]
}

fn main() {
    let mut cluster =
        LiveCluster::build(ClusterSpec::new(1, 3, Mode::MS_SC).with_write_combine());
    let table = Arc::clone(cluster.fast_path().expect("combine table built"));

    // Writes enter at the chain head; the edge starts in relay mode.
    let head_edge = NodeEdge::new(
        NodeId(0),
        Arc::clone(&table),
        cluster.rt.register_mailbox(),
        false,
    );
    let head_srv = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        head_edge.handler(),
        ServerOptions {
            // Enough edge workers that 16 client threads keep 16 submits
            // concurrently in flight — the combine-window case.
            worker_threads: Some(16),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = head_srv.local_addr();

    // Baseline: every PUT relayed to the single-threaded controlet actor.
    let base_1t = median_qps(addr, 1);
    let base_2t = median_qps(addr, 2);
    let base_4t = median_qps(addr, 4);
    let base_8t = median_qps(addr, 8);
    let base_16t = median_qps(addr, 16);
    assert_eq!(
        table.combiner_snapshot().ops,
        0,
        "baseline must not touch the combiner"
    );

    // Combined: worker threads publish into the op log; one combiner
    // applies batches and the actor replicates them as single messages.
    head_edge.set_write_combine(true);
    let comb_1t = median_qps(addr, 1);
    let comb_2t = median_qps(addr, 2);
    let comb_4t = median_qps(addr, 4);
    let comb_8t = median_qps(addr, 8);
    let comb_16t = median_qps(addr, 16);
    let snap = table.combiner_snapshot();
    assert!(snap.batches > 0, "combiner never engaged");
    assert!(snap.ops > 0, "combiner never carried a write");

    drop(head_srv);
    drop(head_edge);
    cluster.rt.shutdown();

    let avg_batch = snap.ops as f64 / snap.batches as f64;
    println!(
        "{{\"baseline\":{{\"put_qps_1thread\":{base_1t:.0},\"put_qps_2thread\":{base_2t:.0},\
         \"put_qps_4thread\":{base_4t:.0},\"put_qps_8thread\":{base_8t:.0},\
         \"put_qps_16thread\":{base_16t:.0}}},\
         \"combined\":{{\"put_qps_1thread\":{comb_1t:.0},\"put_qps_2thread\":{comb_2t:.0},\
         \"put_qps_4thread\":{comb_4t:.0},\"put_qps_8thread\":{comb_8t:.0},\
         \"put_qps_16thread\":{comb_16t:.0},\"batches\":{},\"ops\":{},\
         \"avg_ops_per_batch\":{avg_batch:.2},\"lock_contention\":{},\
         \"window_waits\":{},\"shed_full\":{},\"cache_hits\":{}}},\
         \"speedup_4thread\":{:.2},\"speedup_16thread\":{:.2}}}",
        snap.batches,
        snap.ops,
        snap.lock_contention,
        snap.window_waits,
        snap.shed_full,
        snap.cache_hits,
        comb_4t / base_4t,
        comb_16t / base_16t
    );
}
