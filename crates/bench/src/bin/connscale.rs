//! Connection-scale bench: qps and resident memory for each edge
//! transport while N mostly-idle connections are held open.
//!
//! This is the experiment the epoll reactor exists for (ROADMAP item 3,
//! DESIGN.md §13): a thread-per-connection edge pays one OS thread and
//! two descriptors per connection whether or not it is talking, so its
//! footprint grows linearly and its accept path caps out; a reactor pays
//! one slab entry and one descriptor, so throughput on the *active*
//! connections should stay flat as the idle population grows.
//!
//! Idle connections are held by child processes (`connscale hold <addr>
//! <n>`) so the bench process's descriptor budget is spent on the server
//! side only. Tiers request 1k / 5k / 50k connections; each tier is
//! clamped to what the container's `RLIMIT_NOFILE` (20 000 here, and not
//! raisable without `CAP_SYS_RESOURCE`) leaves for the server after
//! slack, which is also why the blocking edge — two descriptors per
//! connection — caps near half of what the reactor holds.
//!
//! Produces `BENCH_connscale.json`. Run with
//! `cargo run --release --bin connscale`.

use bespokv_proto::client::{Op, Request};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{
    Handler, ServerOptions, TcpClient, TcpServer, TransportKind,
};
use bespokv_types::{ClientId, Key, KvError, RequestId, Value};
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

/// Requested tiers; each is clamped per transport to the descriptor
/// budget.
const TIERS: [usize; 3] = [1_000, 5_000, 50_000];
/// Idle connections per holder child (each child has its own fd limit).
const PER_CHILD: usize = 4_000;
/// Active connections driving load during the measurement.
const ACTIVE: usize = 4;
/// Pipeline depth per active connection.
const DEPTH: usize = 64;
/// Measurement window per tier.
const MEASURE_MS: u64 = 2_000;

fn kv_handler() -> Arc<Handler> {
    use bespokv_proto::client::{RespBody, Response};
    use bespokv_types::VersionedValue;
    use std::collections::HashMap;
    use std::sync::Mutex;
    let store: Mutex<HashMap<Key, Value>> = Mutex::new(HashMap::new());
    Arc::new(move |req: Request| {
        let result = match &req.op {
            Op::Put { key, value } => {
                store.lock().unwrap().insert(key.clone(), value.clone());
                Ok(RespBody::Done)
            }
            Op::Get { key } => store
                .lock()
                .unwrap()
                .get(key)
                .cloned()
                .map(|v| RespBody::Value(VersionedValue::new(v, 1)))
                .ok_or(KvError::NotFound),
            _ => Err(KvError::Rejected("unsupported".into())),
        };
        Response { id: req.id, result }
    })
}

fn parser() -> Box<dyn ProtocolParser> {
    Box::new(BinaryParser::new())
}

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

/// `RLIMIT_NOFILE` soft limit, from /proc (no libc crate in this tree).
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1024)
}

/// Resident set size of this process (server included — it is in-process)
/// in kilobytes.
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmRSS:"))
                .and_then(|v| v.split_whitespace().next())
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Child mode: hold `n` idle connections open against `addr`. Each does
/// one round-trip so it is fully served, then sits silent. Prints READY
/// when all are up, exits when stdin closes (parent dropped us).
fn hold(addr: &str, n: usize) {
    let addr: SocketAddr = addr.parse().expect("addr");
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let mut c = match TcpClient::connect(addr, parser()) {
            Ok(c) => c,
            Err(e) => {
                println!("FAILED {i} {e}");
                return;
            }
        };
        let req = Request::new(
            RequestId::compose(ClientId(9_000 + std::process::id()), i as u32),
            Op::Put {
                key: Key::from(format!("idle{i}").as_str()),
                value: Value::from("x"),
            },
        );
        if let Err(e) = c.call(&req) {
            println!("FAILED {i} {e}");
            return;
        }
        conns.push(c);
    }
    println!("READY {n}");
    // Block until the parent closes our stdin, then drop everything.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(conns);
}

struct Holders {
    children: Vec<Child>,
    held: usize,
}

impl Holders {
    /// Spawns holder children totalling `n` idle connections and waits
    /// until every one reports READY. Returns how many are actually held.
    fn spawn(addr: SocketAddr, n: usize) -> Holders {
        let exe = std::env::current_exe().expect("current_exe");
        let mut children = Vec::new();
        let mut held = 0usize;
        let mut left = n;
        while left > 0 {
            let batch = left.min(PER_CHILD);
            let mut child = Command::new(&exe)
                .arg("hold")
                .arg(addr.to_string())
                .arg(batch.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn holder");
            let mut line = String::new();
            let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
            reader.read_line(&mut line).expect("holder status");
            if let Some(k) = line.strip_prefix("READY ") {
                held += k.trim().parse::<usize>().unwrap_or(0);
            } else {
                eprintln!("holder gave up: {}", line.trim());
                child.stdout = Some(reader.into_inner());
                children.push(child);
                break;
            }
            child.stdout = Some(reader.into_inner());
            children.push(child);
            left -= batch;
        }
        Holders { children, held }
    }
}

impl Drop for Holders {
    fn drop(&mut self) {
        for c in &mut self.children {
            // Closing stdin unblocks the child's read_to_end; kill is the
            // backstop so teardown never hangs the bench.
            drop(c.stdin.take());
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Pipelined PUT/GET load on `ACTIVE` fresh connections for `MEASURE_MS`;
/// returns ops completed per second.
fn measure_qps(addr: SocketAddr) -> f64 {
    let mut clients: Vec<TcpClient> = (0..ACTIVE)
        .map(|_| TcpClient::connect(addr, parser()).expect("active conn"))
        .collect();
    let mut ops = 0u64;
    let mut seq = 0u32;
    let start = Instant::now();
    while start.elapsed().as_millis() < MEASURE_MS as u128 {
        for c in &mut clients {
            let reqs: Vec<Request> = (0..DEPTH)
                .map(|d| {
                    seq += 1;
                    let id = RequestId::compose(ClientId(1), seq);
                    if d % 2 == 0 {
                        Request::new(
                            id,
                            Op::Put {
                                key: Key::from(format!("act{}", seq % 512).as_str()),
                                value: Value::from("v".repeat(32).as_str()),
                            },
                        )
                    } else {
                        Request::new(
                            id,
                            Op::Get {
                                key: Key::from(format!("act{}", seq % 512).as_str()),
                            },
                        )
                    }
                })
                .collect();
            let resps = c.call_pipelined(&reqs).expect("pipelined batch");
            ops += resps.len() as u64;
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

struct TierResult {
    requested: usize,
    held: usize,
    qps: f64,
    rss_kb: u64,
    accepted: u64,
    refused: u64,
}

/// Descriptors the server spends per connection on this transport: the
/// blocking edge keeps the stream plus a try_clone registered for
/// shutdown; the reactor keeps just the stream in its slab.
fn fds_per_conn(kind: TransportKind) -> usize {
    match kind {
        TransportKind::Blocking => 2,
        TransportKind::Reactor => 1,
    }
}

fn run_transport(kind: TransportKind) -> Vec<TierResult> {
    let budget = fd_limit().saturating_sub(512) / fds_per_conn(kind);
    let mut results = Vec::new();
    for requested in TIERS {
        let target = requested.min(budget);
        let server = TcpServer::bind_with(
            "127.0.0.1:0",
            parser_factory(),
            kv_handler(),
            ServerOptions {
                worker_threads: Some(2),
                max_connections: Some(target + ACTIVE + 64),
                transport: Some(kind),
                reactor_threads: Some(2),
                ..ServerOptions::default()
            },
        )
        .expect("bind server");
        let addr = server.local_addr();

        let holders = Holders::spawn(addr, target);
        let qps = measure_qps(addr);
        let rss_kb = vm_rss_kb();
        let stats = server.stats();
        results.push(TierResult {
            requested,
            held: holders.held,
            qps,
            rss_kb,
            accepted: stats.connections_accepted,
            refused: stats.connections_refused,
        });
        eprintln!(
            "{kind:?} tier {requested}: held {} qps {:.0} rss {} MB",
            holders.held,
            qps,
            rss_kb / 1024
        );
        drop(holders);
        drop(server);
    }
    results
}

fn to_json(kind: &str, tiers: &[TierResult]) -> String {
    let rows: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "{{\"requested\":{},\"held\":{},\"qps\":{:.0},\"vm_rss_kb\":{},\
                 \"accepted\":{},\"refused\":{}}}",
                t.requested, t.held, t.qps, t.rss_kb, t.accepted, t.refused
            )
        })
        .collect();
    format!("\"{kind}\":[{}]", rows.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "hold" {
        hold(&args[2], args[3].parse().expect("count"));
        return;
    }

    let limit = fd_limit();
    let blocking = run_transport(TransportKind::Blocking);
    let reactor = run_transport(TransportKind::Reactor);
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"fd_limit\":{limit},"));
    out.push_str(&format!(
        "\"active_conns\":{ACTIVE},\"pipeline_depth\":{DEPTH},\"measure_ms\":{MEASURE_MS},"
    ));
    out.push_str(&to_json("blocking", &blocking));
    out.push(',');
    out.push_str(&to_json("reactor", &reactor));
    out.push('}');
    println!("{out}");
}
