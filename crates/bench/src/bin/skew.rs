//! Skew probe: hot-spot GET throughput over the live TCP edge with the
//! skew engine on vs off.
//!
//! Stands up a real `LiveCluster` (MS+SC, one chain of three) with one
//! TCP edge per replica and drives a 95% GET / 5% PUT mix at three
//! popularity profiles: uniform, YCSB zipfian (theta = 0.99), and a
//! pathological hot spot (theta = 1.2). Worker threads emulate
//! `ClientCore`'s skew-aware routing: strong GETs go to the tail unless
//! the edge sketch classifies the key hot, in which case they round-robin
//! across all three clean replicas (each answering via the validating
//! edge cache / gated fast path, coalescing concurrent misses). A fourth
//! phase repeats theta = 1.2 against a cluster *without* the engine —
//! every read funneled to the tail — as the collapse baseline. Prints one
//! JSON object; used to produce `BENCH_skew.json`. Run with
//! `cargo run --release --bin skew`.

use bespokv_cluster::{ClusterSpec, FastPathTable, LiveCluster, NodeEdge};
use bespokv_proto::client::{Op, Request, Response};
use bespokv_proto::parser::{BinaryParser, ProtocolParser};
use bespokv_runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_types::{
    ClientId, Key, KvError, Mode, NodeId, RequestId, SkewConfig, SkewSnapshot, Value,
};
use bespokv_workloads::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: u64 = 2048;
const PIPELINE: usize = 64;
const THREADS: u32 = 8;
const WARMUP_MS: u64 = 300;
const MEASURE_MS: u64 = 800;
/// One PUT per this many ops (~10% writes), zipf-sampled like the GETs so
/// the hot keys are also the dirty keys — the adversarial case for
/// non-tail strong serving.
const PUT_EVERY: u32 = 10;

fn key(i: u64) -> Key {
    Key::from(format!("user{i:012}"))
}

fn parser_factory() -> Arc<bespokv_runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

/// Uniform or zipfian rank sampling over the keyspace.
fn sample(zipf: &Option<Zipfian>, rng: &mut StdRng) -> u64 {
    match zipf {
        Some(z) => z.sample(rng),
        None => rng.gen_range(0..KEYS),
    }
}

/// Loads the dataset through the head's edge.
fn load(head_addr: SocketAddr) {
    let mut client = TcpClient::connect(head_addr, Box::new(BinaryParser::new())).unwrap();
    let mut seq = 0u32;
    for chunk in (0..KEYS).collect::<Vec<_>>().chunks(PIPELINE) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|&i| {
                seq += 1;
                Request::new(
                    RequestId::compose(ClientId(9000), seq),
                    Op::Put {
                        key: key(i),
                        value: Value::from(format!("v{i:028}")),
                    },
                )
            })
            .collect();
        for resp in client.call_pipelined(&reqs).unwrap() {
            assert!(resp.result.is_ok(), "load failed: {:?}", resp.result);
        }
    }
}

/// Emulates `ClientCore`'s skew-aware target choice: tail for strong
/// reads, spread over all replicas when the edge sketch says hot.
fn route(
    table: &FastPathTable,
    engine_on: bool,
    k: &Key,
    rr: &mut usize,
) -> usize {
    if engine_on {
        if let Some(s) = table.skew() {
            if s.sketch().is_hot(k) {
                s.counters().hot_routed.fetch_add(1, Ordering::Relaxed);
                *rr += 1;
                return *rr % 3;
            }
        }
    }
    2 // the tail, NodeId(2)
}

/// What one response resolved to. A `WrongNode` bounce with a hint is the
/// authoritative-redirect a real `ClientCore` retries for free (the skew
/// router's at-most-one-bounce cost); the bench replays it the same way.
enum Settle {
    Done,
    Shed,
    Bounce(usize),
}

fn settle(resp: &Response) -> Settle {
    match &resp.result {
        Ok(_) => Settle::Done,
        Err(KvError::Overloaded) | Err(KvError::Timeout) => Settle::Shed,
        Err(KvError::WrongNode { hint: Some(n), .. }) => Settle::Bounce(n.raw() as usize % 3),
        other => panic!("request failed hard: {other:?}"),
    }
}

/// Sends one batch per edge, replaying `WrongNode` bounces once to the
/// hinted edge (a second bounce counts as shed — no retry loops in a
/// closed-loop bench). Returns (done, shed).
fn call_batches(clients: &mut [TcpClient], batches: [Vec<Request>; 3]) -> (u64, u64) {
    let (mut done, mut shed) = (0u64, 0u64);
    let mut retries: [Vec<Request>; 3] = Default::default();
    for (i, b) in batches.iter().enumerate() {
        if b.is_empty() {
            continue;
        }
        for (req, resp) in b.iter().zip(clients[i].call_pipelined(b).unwrap()) {
            match settle(&resp) {
                Settle::Done => done += 1,
                Settle::Shed => shed += 1,
                Settle::Bounce(n) => retries[n].push(req.clone()),
            }
        }
    }
    for (i, b) in retries.iter().enumerate() {
        if b.is_empty() {
            continue;
        }
        for resp in clients[i].call_pipelined(b).unwrap() {
            match settle(&resp) {
                Settle::Done => done += 1,
                _ => shed += 1,
            }
        }
    }
    (done, shed)
}

/// Closed-loop mixed workload against the three edges for `ms`
/// milliseconds; returns (ops/sec, sheds/sec).
fn mixed_throughput(
    addrs: [SocketAddr; 3],
    table: &Arc<FastPathTable>,
    engine_on: bool,
    theta: Option<f64>,
    ms: u64,
) -> (f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let table = Arc::clone(table);
            std::thread::spawn(move || {
                let mut clients: Vec<TcpClient> = addrs
                    .iter()
                    .map(|&a| TcpClient::connect(a, Box::new(BinaryParser::new())).unwrap())
                    .collect();
                let zipf = theta.map(|th| Zipfian::new(KEYS, th).scrambled());
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                let mut rr = t as usize;
                let mut seq = 0u32;
                let (mut done, mut shed) = (0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    let mut batches: [Vec<Request>; 3] = Default::default();
                    for _ in 0..PIPELINE {
                        seq += 1;
                        let k = key(sample(&zipf, &mut rng));
                        let rid = RequestId::compose(ClientId(9100 + t), seq);
                        if seq % PUT_EVERY == 0 {
                            // Writes always enter at the head.
                            batches[0].push(Request::new(
                                rid,
                                Op::Put {
                                    key: k,
                                    value: Value::from(format!("w{seq:028}")),
                                },
                            ));
                        } else {
                            let target = route(&table, engine_on, &k, &mut rr);
                            batches[target].push(Request::new(rid, Op::Get { key: k }));
                        }
                    }
                    let (d, s) = call_batches(&mut clients, batches);
                    done += d;
                    shed += s;
                }
                (done, shed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(ms));
    stop.store(true, Ordering::Release);
    let (mut done, mut shed) = (0u64, 0u64);
    for w in workers {
        let (d, s) = w.join().unwrap();
        done += d;
        shed += s;
    }
    let secs = t0.elapsed().as_secs_f64();
    (done as f64 / secs, shed as f64 / secs)
}

/// Sequential GET RTT percentiles in microseconds, same routing policy.
fn get_rtt(
    addrs: [SocketAddr; 3],
    table: &Arc<FastPathTable>,
    engine_on: bool,
    theta: Option<f64>,
) -> (f64, f64) {
    let mut clients: Vec<TcpClient> = addrs
        .iter()
        .map(|&a| TcpClient::connect(a, Box::new(BinaryParser::new())).unwrap())
        .collect();
    let zipf = theta.map(|th| Zipfian::new(KEYS, th).scrambled());
    let mut rng = StdRng::seed_from_u64(77);
    let mut rr = 0usize;
    let mut rtts: Vec<f64> = Vec::with_capacity(3000);
    for seq in 0..3000u32 {
        let k = key(sample(&zipf, &mut rng));
        let target = route(table, engine_on, &k, &mut rr);
        let req = Request::new(RequestId::compose(ClientId(9200), seq), Op::Get { key: k });
        let t = Instant::now();
        let resp = clients[target].call(&req).unwrap();
        match settle(&resp) {
            // The bounce retry is part of the op's real latency.
            Settle::Bounce(n) => {
                if matches!(settle(&clients[n].call(&req).unwrap()), Settle::Done) {
                    rtts.push(t.elapsed().as_nanos() as f64 / 1e3);
                }
            }
            Settle::Done => rtts.push(t.elapsed().as_nanos() as f64 / 1e3),
            Settle::Shed => {}
        }
    }
    rtts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (rtts[rtts.len() / 2], rtts[rtts.len() * 99 / 100])
}

/// Thundering herd against one non-tail edge: a dedicated writer keeps
/// the hottest key dirty while `HERD_THREADS` barrier-synchronized
/// readers fire the *same* GET at the head's edge simultaneously — the
/// singleflight table's reason to exist. Returns (gets, skew delta).
fn herd(addrs: [SocketAddr; 3], table: &Arc<FastPathTable>) -> (u64, SkewSnapshot) {
    const HERD_THREADS: usize = 8;
    const ROUNDS: usize = 400;
    // The zipfian rank-0 key after scrambling — the same key the mixed
    // phases hammered. Re-record it so it is classified hot regardless of
    // where the decay epochs left the sketch.
    let hot = key(bespokv_types::shardmap::splitmix64(0) % KEYS);
    let skew = table.skew().expect("skew engine on");
    for _ in 0..1000 {
        skew.sketch().record(&hot);
    }
    assert!(skew.sketch().is_hot(&hot), "herd key must classify hot");
    let before = table.skew_snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let hot = hot.clone();
        std::thread::spawn(move || {
            let mut client =
                TcpClient::connect(addrs[0], Box::new(BinaryParser::new())).unwrap();
            let mut seq = 0u32;
            while !stop.load(Ordering::Acquire) {
                seq += 1;
                let req = Request::new(
                    RequestId::compose(ClientId(9300), seq),
                    Op::Put {
                        key: hot.clone(),
                        value: Value::from(format!("h{seq:028}")),
                    },
                );
                assert!(client.call(&req).unwrap().result.is_ok());
            }
        })
    };
    let barrier = Arc::new(std::sync::Barrier::new(HERD_THREADS));
    let readers: Vec<_> = (0..HERD_THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let hot = hot.clone();
            std::thread::spawn(move || {
                let mut head =
                    TcpClient::connect(addrs[0], Box::new(BinaryParser::new())).unwrap();
                let mut tail =
                    TcpClient::connect(addrs[2], Box::new(BinaryParser::new())).unwrap();
                let mut done = 0u64;
                for r in 0..ROUNDS {
                    barrier.wait();
                    let req = Request::new(
                        RequestId::compose(ClientId(9400 + t as u32), r as u32),
                        Op::Get { key: hot.clone() },
                    );
                    let resp = head.call(&req).unwrap();
                    match settle(&resp) {
                        Settle::Done => done += 1,
                        Settle::Bounce(_) => {
                            if matches!(settle(&tail.call(&req).unwrap()), Settle::Done) {
                                done += 1;
                            }
                        }
                        Settle::Shed => {}
                    }
                }
                done
            })
        })
        .collect();
    let gets: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
    (gets, snap_delta(before, table.skew_snapshot()))
}

fn snap_delta(a: SkewSnapshot, b: SkewSnapshot) -> SkewSnapshot {
    SkewSnapshot {
        sketch_ops: b.sketch_ops - a.sketch_ops,
        hot_lookups: b.hot_lookups - a.hot_lookups,
        epochs: b.epochs.saturating_sub(a.epochs),
        cache_hits: b.cache_hits - a.cache_hits,
        cache_fills: b.cache_fills - a.cache_fills,
        cache_invalidated: b.cache_invalidated - a.cache_invalidated,
        coalesce_leaders: b.coalesce_leaders - a.coalesce_leaders,
        coalesced: b.coalesced - a.coalesced,
        hot_routed: b.hot_routed - a.hot_routed,
    }
}

struct PhaseResult {
    qps: f64,
    shed_ps: f64,
    p50: f64,
    p99: f64,
    skew: SkewSnapshot,
}

fn phase_json(name: &str, r: &PhaseResult) -> String {
    format!(
        "\"{name}\":{{\"get_qps\":{:.0},\"shed_per_sec\":{:.0},\
         \"rtt_p50_us\":{:.1},\"rtt_p99_us\":{:.1},\
         \"hot_lookups\":{},\"cache_hits\":{},\"cache_fills\":{},\
         \"cache_invalidated\":{},\"coalesce_leaders\":{},\"coalesced\":{},\
         \"hot_routed\":{}}}",
        r.qps,
        r.shed_ps,
        r.p50,
        r.p99,
        r.skew.hot_lookups,
        r.skew.cache_hits,
        r.skew.cache_fills,
        r.skew.cache_invalidated,
        r.skew.coalesce_leaders,
        r.skew.coalesced,
        r.skew.hot_routed,
    )
}

/// One cluster (with or without the skew engine), one mixed phase per
/// requested theta, plus the herd microbench when the engine is on.
/// Warmup feeds the sketch before anything is measured.
fn run_cluster(
    with_skew: bool,
    thetas: &[(&str, Option<f64>)],
) -> (Vec<(String, PhaseResult)>, Option<(u64, SkewSnapshot)>) {
    let spec = if with_skew {
        ClusterSpec::new(1, 3, Mode::MS_SC).with_skew(SkewConfig::default())
    } else {
        ClusterSpec::new(1, 3, Mode::MS_SC).with_fast_path()
    };
    let mut cluster = LiveCluster::build(spec);
    let table = Arc::clone(cluster.fast_path().expect("fast path enabled"));
    let edges: Vec<NodeEdge> = (0..3)
        .map(|n| {
            NodeEdge::new(
                NodeId(n),
                Arc::clone(&table),
                cluster.rt.register_mailbox(),
                true,
            )
        })
        .collect();
    let servers: Vec<TcpServer> = edges
        .iter()
        .map(|e| {
            TcpServer::bind_with(
                "127.0.0.1:0",
                parser_factory(),
                e.handler(),
                ServerOptions {
                    worker_threads: Some(8),
                    ..ServerOptions::default()
                },
            )
            .unwrap()
        })
        .collect();
    let addrs = [
        servers[0].local_addr(),
        servers[1].local_addr(),
        servers[2].local_addr(),
    ];
    load(addrs[0]);

    let mut out = Vec::new();
    for &(name, theta) in thetas {
        // Warm the sketch (and caches) before measuring.
        mixed_throughput(addrs, &table, with_skew, theta, WARMUP_MS);
        let before = table.skew_snapshot();
        let (qps, shed_ps) = mixed_throughput(addrs, &table, with_skew, theta, MEASURE_MS);
        let (p50, p99) = get_rtt(addrs, &table, with_skew, theta);
        let after = table.skew_snapshot();
        out.push((
            name.to_string(),
            PhaseResult {
                qps,
                shed_ps,
                p50,
                p99,
                skew: snap_delta(before, after),
            },
        ));
    }

    let herd_out = with_skew.then(|| herd(addrs, &table));

    drop(servers);
    drop(edges);
    cluster.rt.shutdown();
    (out, herd_out)
}

fn main() {
    // Collapse baseline: no sketch, no cache, no spreading — every strong
    // read funnels to the tail while hot keys churn dirty.
    let (baseline, _) = run_cluster(false, &[("zipf12_off", Some(1.2))]);
    // Skew engine on: uniform control, YCSB zipfian, pathological zipfian.
    let (engine, herd_out) = run_cluster(
        true,
        &[
            ("uniform_on", None),
            ("zipf099_on", Some(0.99)),
            ("zipf12_on", Some(1.2)),
        ],
    );
    let (herd_gets, herd_skew) = herd_out.expect("herd runs on the skew cluster");

    let find = |rs: &[(String, PhaseResult)], n: &str| -> (f64, f64) {
        rs.iter()
            .find(|(name, _)| name == n)
            .map(|(_, r)| (r.qps, r.p99))
            .unwrap()
    };
    let (uni_qps, uni_p99) = find(&engine, "uniform_on");
    let (hot_qps, hot_p99) = find(&engine, "zipf12_on");

    let phases: Vec<String> = baseline
        .iter()
        .chain(engine.iter())
        .map(|(n, r)| phase_json(n, r))
        .collect();
    println!(
        "{{\"keys\":{KEYS},\"threads\":{THREADS},\"pipeline\":{PIPELINE},\
         \"put_every\":{PUT_EVERY},\"phases\":{{{}}},\
         \"herd\":{{\"gets\":{herd_gets},\"coalesce_leaders\":{},\
         \"coalesced\":{},\"cache_hits\":{}}},\
         \"qps_ratio_zipf12_on_vs_uniform\":{:.3},\
         \"p99_ratio_zipf12_on_vs_uniform\":{:.3}}}",
        phases.join(","),
        herd_skew.coalesce_leaders,
        herd_skew.coalesced,
        herd_skew.cache_hits,
        hot_qps / uni_qps,
        hot_p99 / uni_p99,
    );
}
