//! Result rows and report formatting for the figure harness.

use std::fmt::Write as _;
use std::path::Path;

/// Process CPU time consumed so far (utime + stime from /proc/self/stat).
///
/// Wall-clock on shared vCPUs suffers steal-time noise of several x; CPU
/// time is what the engine actually burned and is stable, so the real-
/// engine microbenchmarks rate by it.
pub fn process_cpu_time() -> std::time::Duration {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Field 2 (comm) may contain spaces; skip past the closing paren.
    let rest = stat.rsplit_once(national_paren()).map(|(_, r)| r).unwrap_or(&stat);
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the paren: field index 11 = utime, 12 = stime (0-based).
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    let tick = 100u64; // _SC_CLK_TCK on Linux
    std::time::Duration::from_nanos((utime + stime) * (1_000_000_000 / tick))
}

fn national_paren() -> char {
    ')'
}

/// One data point of a figure or table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Series label (e.g. `"ms+sc zipf 95% GET"`).
    pub series: String,
    /// X value (node count, time in seconds, offered load, ...).
    pub x: f64,
    /// Primary Y value (usually kQPS).
    pub y: f64,
    /// Optional secondary value (usually latency in ms).
    pub y2: Option<f64>,
}

impl Row {
    /// Builds a throughput point.
    pub fn point(series: impl Into<String>, x: f64, y: f64) -> Self {
        Row {
            series: series.into(),
            x,
            y,
            y2: None,
        }
    }

    /// Builds a throughput + latency point.
    pub fn with_latency(series: impl Into<String>, x: f64, y: f64, lat_ms: f64) -> Self {
        Row {
            series: series.into(),
            x,
            y,
            y2: Some(lat_ms),
        }
    }
}

/// A complete experiment result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (`"fig7"`, `"table1"`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Axis/unit annotations: (x, y, y2).
    pub axes: (&'static str, &'static str, &'static str),
    /// The data.
    pub rows: Vec<Row>,
    /// Free-form notes (substitutions, paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: &'static str,
        title: &'static str,
        axes: (&'static str, &'static str, &'static str),
    ) -> Self {
        Report {
            id,
            title,
            axes,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders a fixed-width text table grouped by series.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let (x, y, y2) = self.axes;
        let mut series: Vec<&str> = self.rows.iter().map(|r| r.series.as_str()).collect();
        series.dedup();
        let mut seen = std::collections::BTreeSet::new();
        let series: Vec<&str> = self
            .rows
            .iter()
            .map(|r| r.series.as_str())
            .filter(|s| seen.insert(s.to_string()))
            .collect();
        for s in series {
            let _ = writeln!(out, "  [{s}]");
            let has_y2 = self
                .rows
                .iter()
                .any(|r| r.series == s && r.y2.is_some());
            if has_y2 {
                let _ = writeln!(out, "    {x:>12} {y:>14} {y2:>14}");
            } else {
                let _ = writeln!(out, "    {x:>12} {y:>14}");
            }
            for r in self.rows.iter().filter(|r| r.series == s) {
                match r.y2 {
                    Some(v2) => {
                        let _ = writeln!(out, "    {:>12.2} {:>14.2} {:>14.3}", r.x, r.y, v2);
                    }
                    None => {
                        let _ = writeln!(out, "    {:>12.2} {:>14.2}", r.x, r.y);
                    }
                }
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Writes the rows as CSV to `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut body = String::new();
        let (x, y, y2) = self.axes;
        let _ = writeln!(body, "series,{x},{y},{y2}");
        for r in &self.rows {
            let _ = writeln!(
                body,
                "{},{},{},{}",
                r.series.replace(',', ";"),
                r.x,
                r.y,
                r.y2.map(|v| v.to_string()).unwrap_or_default()
            );
        }
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figX", "sample", ("nodes", "kqps", "ms"));
        r.rows.push(Row::point("a", 3.0, 10.0));
        r.rows.push(Row::with_latency("a", 6.0, 19.5, 0.8));
        r.rows.push(Row::point("b", 3.0, 5.0));
        r.note("synthetic");
        r
    }

    #[test]
    fn text_render_groups_series() {
        let txt = sample().to_text();
        assert!(txt.contains("== figX"));
        assert!(txt.contains("[a]"));
        assert!(txt.contains("[b]"));
        assert!(txt.contains("note: synthetic"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bespokv-report-{}", std::process::id()));
        let path = sample().write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("series,nodes,kqps,ms"));
        assert_eq!(body.lines().count(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
