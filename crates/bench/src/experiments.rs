//! The experiments: one function per table/figure of the paper.
//!
//! Paper-vs-measured commentary lives in EXPERIMENTS.md; each function
//! documents its configuration and any scaling applied.

use crate::report::{Report, Row};
use crate::runners::{BespokvRun, Scale};
use bespokv_baselines::{DynamoCluster, DynamoStyle, ProxyCluster, ProxyStyle};
use bespokv_cluster::{ClusterSpec, SimCluster};
use bespokv_coordinator::CoordConfig;
use bespokv_datalet::{Datalet, EngineKind, DEFAULT_TABLE};
use bespokv_runtime::TransportProfile;
use bespokv_types::{ConsistencyLevel, Duration, Mode, NodeId, ShardId};
use bespokv_workloads::hpc::HpcTrace;
use bespokv_workloads::{Distribution, Mix, Workload, WorkloadConfig};


/// Storage-backed engine wrapper for Fig 6: charges device-class write
/// latency per mutation. The paper's monitoring use case *persists* all
/// collected data (section VI-A), and the LSM-vs-B+ trade-off it cites is
/// a storage trade-off: LSM persists with sequential appends, a B+ tree
/// updates pages in place (random writes). Reads are served from memory in
/// both (hot working set), so analytics measures pure structure speed.
/// Constants are SSD-class datasheet figures, not fitted outcomes.
struct StorageBacked {
    inner: std::sync::Arc<dyn Datalet>,
    write_penalty: std::time::Duration,
}

impl StorageBacked {
    fn spin(d: std::time::Duration) {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

impl Datalet for StorageBacked {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn capabilities(&self) -> bespokv_datalet::Capabilities {
        bespokv_datalet::Capabilities {
            persistent: true,
            ..self.inner.capabilities()
        }
    }
    fn put(
        &self,
        table: &str,
        key: bespokv_types::Key,
        value: bespokv_types::Value,
        version: u64,
    ) -> bespokv_types::KvResult<()> {
        Self::spin(self.write_penalty);
        self.inner.put(table, key, value, version)
    }
    fn get(
        &self,
        table: &str,
        key: &bespokv_types::Key,
    ) -> bespokv_types::KvResult<bespokv_types::VersionedValue> {
        self.inner.get(table, key)
    }
    fn del(
        &self,
        table: &str,
        key: &bespokv_types::Key,
        version: u64,
    ) -> bespokv_types::KvResult<()> {
        Self::spin(self.write_penalty);
        self.inner.del(table, key, version)
    }
    fn scan(
        &self,
        table: &str,
        start: &bespokv_types::Key,
        end: &bespokv_types::Key,
        limit: usize,
    ) -> bespokv_types::KvResult<Vec<(bespokv_types::Key, bespokv_types::VersionedValue)>> {
        self.inner.scan(table, start, end, limit)
    }
    fn create_table(&self, name: &str) -> bespokv_types::KvResult<()> {
        self.inner.create_table(name)
    }
    fn delete_table(&self, name: &str) -> bespokv_types::KvResult<()> {
        self.inner.delete_table(name)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn snapshot_chunk(&self, from: u64, max: usize) -> (Vec<bespokv_datalet::SnapshotEntry>, bool) {
        self.inner.snapshot_chunk(from, max)
    }
    fn stats(&self) -> bespokv_datalet::DataletStats {
        self.inner.stats()
    }
}

/// Table I: the feature matrix.
pub fn table1(_scale: Scale) -> Report {
    let mut r = Report::new(
        "table1",
        "BespoKV vs state-of-the-art systems (Table I)",
        ("column", "supported", ""),
    );
    let cols = ["S", "R", "MB", "MC", "MT", "AR", "P"];
    for row in bespokv_baselines::feature_matrix() {
        let vals = [
            row.sharding,
            row.replication,
            row.multi_backend,
            row.multi_consistency,
            row.multi_topology,
            row.auto_recovery,
            row.programmable,
        ];
        for (i, v) in vals.iter().enumerate() {
            r.rows.push(Row::point(
                format!("{} {}", row.system, cols[i]),
                i as f64,
                *v as u8 as f64,
            ));
        }
    }
    r.note("S sharding, R replication, MB multi-backend, MC multi-consistency, MT multi-topology, AR auto-recovery, P programmable");
    r
}

/// Fig 6: monitoring vs analytics throughput on LSM / B+ / Log datalets.
///
/// This one runs the *real engines* (no simulation): the Lustre-style
/// monitoring trace (write-dominated, append-style series) and the
/// analytics trace (read-only uniform) drive each engine directly and we
/// measure wall-clock throughput.
pub fn fig6(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig6",
        "Effect of different data abstractions (Fig 6)",
        ("workload(0=monitoring,1=analytics)", "kQPS", ""),
    );
    // The engine asymmetry only shows at volume (the paper issues 10 M
    // requests): the B-tree must grow deep while the LSM memtable stays
    // cache-resident.
    let (ops, rounds) = match scale {
        Scale::Quick => (400_000u64, 2),
        Scale::Full => (1_000_000u64, 3),
    };
    type EngineFactory = fn() -> std::sync::Arc<dyn Datalet>;
    let engines: [(&str, EngineFactory); 3] = [
        // LSM persists with sequential appends (cheap per write).
        ("LSM", || {
            std::sync::Arc::new(StorageBacked {
                inner: std::sync::Arc::new(bespokv_datalet::TLsm::default()),
                write_penalty: std::time::Duration::from_micros(1),
            })
        }),
        // A persistent B+ tree updates pages in place: random writes.
        ("B+", || {
            std::sync::Arc::new(StorageBacked {
                inner: std::sync::Arc::new(bespokv_datalet::TMt::new()),
                write_penalty: std::time::Duration::from_micros(3),
            })
        }),
        ("Log", || {
            // The paper's log datalet persists to disk; this testbed has
            // no HDD, so the file device is wrapped in the HDD latency
            // profile (DESIGN.md, substitution 6).
            let dir = std::env::temp_dir().join("bespokv-fig6");
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("tlog-{}.dat", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let dev = std::sync::Arc::new(bespokv_datalet::SlowDevice::hdd(
                bespokv_datalet::FileDevice::open(&path).expect("open tlog file"),
            ));
            std::sync::Arc::new(
                bespokv_datalet::TLog::open(dev, bespokv_datalet::SyncPolicy::EveryN(256))
                    .expect("tlog"),
            )
        }),
    ];
    // The box shares a vCPU, so single-shot wall-clock numbers are noisy;
    // interleave engines across rounds and keep each cell's best round.
    let mut best = std::collections::HashMap::<String, f64>::new();
    for _round in 0..rounds {
        for (name, build) in engines {
            for (wi, trace) in [HpcTrace::Monitoring, HpcTrace::Analytics]
                .into_iter()
                .enumerate()
            {
                let engine = build();
                let mut wl = trace.workload(42);
                // Preload so analytics reads hit.
                for (k, v) in wl.load_keys(20_000) {
                    let _ = engine.put(DEFAULT_TABLE, k, v, 1);
                }
                let mut version = 10u64;
                let cpu0 = crate::report::process_cpu_time();
                for _ in 0..ops {
                    version += 1;
                    match wl.next_op() {
                        bespokv_proto::Op::Put { key, value } => {
                            let _ = engine.put(DEFAULT_TABLE, key, value, version);
                        }
                        bespokv_proto::Op::Get { key } => {
                            let _ = engine.get(DEFAULT_TABLE, &key);
                        }
                        bespokv_proto::Op::Scan { start, end, limit } => {
                            let _ = engine.scan(DEFAULT_TABLE, &start, &end, limit as usize);
                        }
                        _ => {}
                    }
                }
                let spent = crate::report::process_cpu_time() - cpu0;
                let kqps = ops as f64 / spent.as_secs_f64().max(1e-9) / 1e3;
                let cell = format!("{name} {}@{wi}", trace.tag());
                let e = best.entry(cell).or_insert(0.0);
                *e = e.max(kqps);
            }
        }
    }
    let mut cells: Vec<(String, f64)> = best.into_iter().collect();
    cells.sort_by(|a, b| a.0.cmp(&b.0));
    for (cell, kqps) in cells {
        let (series, wi) = cell.rsplit_once('@').expect("cell format");
        r.rows.push(Row::point(series, wi.parse().expect("index"), kqps));
    }
    r.note("real engines, single thread, rated by process CPU time (shared-vCPU steal immunity); paper shape: LSM wins monitoring (writes), B+ wins analytics (reads), Log slowest (disk)");
    r
}

fn sweep_series(r: &mut Report, scale: Scale, series: &str, make: impl Fn(u32) -> BespokvRun) {
    for nodes in scale.node_sweep() {
        let stats = make(nodes).execute(scale);
        r.rows.push(Row::with_latency(
            series,
            nodes as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
}

/// Fig 7: tHT scales horizontally under all four modes.
pub fn fig7(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig7",
        "BespoKV scales tHT horizontally (Fig 7)",
        ("nodes", "kQPS", "mean ms"),
    );
    for mode in Mode::ALL {
        for (mixname, mix) in [
            ("95% GET", Mix::READ_MOSTLY),
            ("50% GET", Mix::UPDATE_INTENSIVE),
        ] {
            for (dname, dist) in [
                ("unif", Distribution::Uniform),
                ("zipf", Distribution::Zipfian),
            ] {
                sweep_series(&mut r, scale, &format!("{mode} {dname} {mixname}"), |nodes| {
                    BespokvRun::new(mode, nodes, mix, dist)
                });
            }
        }
    }
    r.note("GCE-profile fabric (1 Gbps), replication 3, tHT datalets");
    r
}

/// Fig 8: the HPC workloads (job launch, I/O forwarding) scale too.
pub fn fig8(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig8",
        "BespoKV scales HPC workloads (Fig 8)",
        ("nodes", "kQPS", "mean ms"),
    );
    for mode in Mode::ALL {
        for trace in [HpcTrace::JobLaunch, HpcTrace::IoForwarding] {
            // HPC traces are Get/Put mixes over a metadata keyspace; the
            // standard runner reproduces their measured mixes.
            let mix = Mix::read_write(trace.get_fraction());
            sweep_series(&mut r, scale, &format!("{mode} {}", trace.tag()), |nodes| {
                BespokvRun::new(mode, nodes, mix, Distribution::Uniform)
            });
        }
    }
    r.note("paper: MS beats AA under SC; AA beats MS under EC; I/O-fwd slightly above job-launch (more reads)");
    r
}

/// Fig 9: tSSDB, tLog and tMT under MS+EC, including scans.
pub fn fig9(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig9",
        "BespoKV scales tSSDB, tLog, tMT with MS+EC (Fig 9)",
        ("nodes", "kQPS", "mean ms"),
    );
    let engines = [
        ("tSSDB", EngineKind::TSsdb),
        ("tLog", EngineKind::TLog),
        ("tMT", EngineKind::TMt),
    ];
    for (name, engine) in engines {
        for (mixname, mix) in [
            ("95% GET", Mix::READ_MOSTLY),
            ("50% GET", Mix::UPDATE_INTENSIVE),
        ] {
            for (dname, dist) in [
                ("unif", Distribution::Uniform),
                ("zipf", Distribution::Zipfian),
            ] {
                sweep_series(
                    &mut r,
                    scale,
                    &format!("{name} {dname} {mixname}"),
                    |nodes| BespokvRun::new(Mode::MS_EC, nodes, mix, dist).with_engines(vec![engine]),
                );
            }
        }
        // Scan-intensive workload only where the engine supports ranges.
        if engine != EngineKind::TLog {
            for (dname, dist) in [
                ("unif", Distribution::Uniform),
                ("zipf", Distribution::Zipfian),
            ] {
                sweep_series(
                    &mut r,
                    scale,
                    &format!("{name} {dname} 95% SCAN"),
                    |nodes| {
                        BespokvRun::new(Mode::MS_EC, nodes, Mix::SCAN_INTENSIVE, dist)
                            .with_engines(vec![engine])
                    },
                );
            }
        }
    }
    r.note("tLog's hash index cannot scan (as in the paper); scans land far below point ops");
    r
}

/// Fig 10: seamless adaptation — throughput timeline through a transition.
pub fn fig10(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig10",
        "Seamless adaptation MS+EC -> {MS+SC, AA+EC, AA+SC} (Fig 10)",
        ("time s", "kQPS", ""),
    );
    let (total, trigger) = match scale {
        Scale::Quick => (Duration::from_secs(8), Duration::from_secs(4)),
        Scale::Full => (Duration::from_secs(40), Duration::from_secs(20)),
    };
    for target in [Mode::MS_SC, Mode::AA_EC, Mode::AA_SC] {
        let spec = ClusterSpec::new(3, 3, Mode::MS_EC);
        let mut cluster = SimCluster::build(spec);
        let wl_cfg = WorkloadConfig {
            num_keys: scale.keyspace() / 2,
            ..WorkloadConfig::small(Mix::READ_MOSTLY, Distribution::Zipfian)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        for c in 0..9u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                16,
                Duration::ZERO,
                Duration::from_millis(500),
            );
        }
        cluster.run_for(trigger);
        for shard in 0..3 {
            cluster.start_transition(ShardId(shard), target);
        }
        cluster.run_for(total.saturating_sub(trigger));
        let stats = cluster.collect_stats(total);
        for (t, qps) in stats.timeline.series() {
            r.rows
                .push(Row::point(format!("ms+ec -> {target}"), t, qps / 1e3));
        }
    }
    r.note(format!(
        "transition triggered at {:.0} s; expect a dip as clients reconnect, stabilizing in ~seconds; no downtime, no data migration",
        trigger.as_secs_f64()
    ));
    r
}

/// Fig 11: tRedis under bespoKV vs Twemproxy+Redis vs Dynomite+Redis.
pub fn fig11(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig11",
        "BespoKV adds MS+SC and AA+EC to Redis; proxy comparison (Fig 11)",
        ("config index", "kQPS", "mean ms"),
    );
    let groups = 8u32;
    let repl = 3u32;
    let workloads = [
        ("unif 95% GET", Mix::READ_MOSTLY, Distribution::Uniform),
        ("zipf 95% GET", Mix::READ_MOSTLY, Distribution::Zipfian),
        ("unif 50% GET", Mix::UPDATE_INTENSIVE, Distribution::Uniform),
        ("zipf 50% GET", Mix::UPDATE_INTENSIVE, Distribution::Zipfian),
    ];
    // bespoKV + tRedis in three modes.
    for (ci, mode) in [Mode::MS_SC, Mode::MS_EC, Mode::AA_EC].into_iter().enumerate() {
        for (wname, mix, dist) in workloads {
            let stats = BespokvRun::new(mode, groups * repl, mix, dist)
                .with_engines(vec![EngineKind::TRedis])
                .execute(scale);
            r.rows.push(Row::with_latency(
                format!("tRedis {mode} {wname}"),
                ci as f64,
                stats.kqps(),
                stats.mean_latency_ms(),
            ));
        }
    }
    // Proxy baselines.
    for (ci, style) in [ProxyStyle::Twemproxy, ProxyStyle::Dynomite]
        .into_iter()
        .enumerate()
    {
        for (wname, mix, dist) in workloads {
            let mut cluster =
                ProxyCluster::build(style, groups, repl as usize, TransportProfile::cloud_1g());
            let wl_cfg = WorkloadConfig {
                num_keys: scale.keyspace(),
                ..WorkloadConfig::small(mix, dist)
            };
            let base = Workload::new(wl_cfg.clone());
            let mut loader = base.fork(0x10AD);
            cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
            for c in 0..(groups * repl) as u64 {
                let mut w = base.fork(c + 1);
                cluster.add_client(
                    Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                    16,
                    scale.warmup(),
                    Duration::from_millis(500),
                );
            }
            let stats = cluster.run_and_collect(scale.warmup(), scale.window());
            r.rows.push(Row::with_latency(
                format!("{} {wname}", style.name()),
                3.0 + ci as f64,
                stats.kqps(),
                stats.mean_latency_ms(),
            ));
        }
    }
    r.note("8 shards x 3 replicas (24 nodes); paper: Twem+Redis slightly above bespoKV MS+EC; Dynomite ~= bespoKV AA+EC; MS+SC below MS+EC");
    r
}

/// Fig 12: latency vs throughput against Cassandra and Voldemort.
pub fn fig12(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig12",
        "Latency vs throughput: bespoKV modes vs Cassandra/Voldemort (Fig 12)",
        ("kQPS", "mean latency ms", ""),
    );
    // The paper's 12-machine local testbed: 6 server nodes, 10 GbE.
    let nodes = 6u32;
    let load_points: &[usize] = match scale {
        Scale::Quick => &[2, 8, 32, 64],
        Scale::Full => &[1, 2, 4, 8, 16, 32, 48, 64],
    };
    for (wname, mix) in [
        ("95% GET", Mix::READ_MOSTLY),
        ("50% GET", Mix::UPDATE_INTENSIVE),
    ] {
        for mode in Mode::ALL {
            for &clients in load_points {
                let stats = run_fig12_bespokv(mode, nodes, mix, clients, scale);
                r.rows.push(Row::point(
                    format!("{mode} {wname}"),
                    stats.kqps(),
                    stats.mean_latency_ms(),
                ));
            }
        }
        for style in [DynamoStyle::Cassandra, DynamoStyle::Voldemort] {
            for &clients in load_points {
                let stats = run_fig12_dynamo(style, nodes, mix, clients, scale);
                r.rows.push(Row::point(
                    format!("{} {wname}", style.name()),
                    stats.kqps(),
                    stats.mean_latency_ms(),
                ));
            }
        }
    }
    r.note("6 server nodes, 10 GbE local-testbed profile, zipfian; #clients varied to trace the curve");
    r
}

fn run_fig12_bespokv(
    mode: Mode,
    nodes: u32,
    mix: Mix,
    clients: usize,
    scale: Scale,
) -> bespokv_cluster::RunStats {
    let spec = ClusterSpec::new(nodes / 3, 3, mode).with_transport(TransportProfile::socket());
    let mut cluster = SimCluster::build(spec);
    let wl_cfg = WorkloadConfig {
        num_keys: scale.keyspace(),
        ..WorkloadConfig::small(mix, Distribution::Zipfian)
    };
    let base = Workload::new(wl_cfg.clone());
    let mut loader = base.fork(0x10AD);
    cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
    for c in 0..clients as u64 {
        let mut w = base.fork(c + 1);
        cluster.add_client(
            Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
            4,
            scale.warmup(),
            Duration::from_millis(500),
        );
    }
    cluster.run_for(scale.warmup() + scale.window());
    cluster.collect_stats(scale.window())
}

fn run_fig12_dynamo(
    style: DynamoStyle,
    nodes: u32,
    mix: Mix,
    clients: usize,
    scale: Scale,
) -> bespokv_cluster::RunStats {
    let mut cluster = DynamoCluster::build(style, nodes, 3, TransportProfile::socket());
    let wl_cfg = WorkloadConfig {
        num_keys: scale.keyspace(),
        ..WorkloadConfig::small(mix, Distribution::Zipfian)
    };
    let base = Workload::new(wl_cfg.clone());
    let mut loader = base.fork(0x10AD);
    cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
    for c in 0..clients as u64 {
        let mut w = base.fork(c + 1);
        cluster.add_client(
            Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
            4,
            scale.warmup(),
            Duration::from_millis(500),
        );
    }
    cluster.run_and_collect(scale.warmup(), scale.window())
}

/// Section VIII-D: per-request consistency and polyglot persistence.
pub fn sec8d(scale: Scale) -> Report {
    let mut r = Report::new(
        "sec8d",
        "Extensibility: per-request consistency + polyglot persistence (section VIII-D)",
        ("config", "kQPS", "mean ms"),
    );
    // Per-request consistency: MS+SC store, reads 25% SC : 75% EC.
    for (i, (wname, mix)) in [
        ("95% GET", Mix::READ_MOSTLY),
        ("50% GET", Mix::UPDATE_INTENSIVE),
    ]
    .into_iter()
    .enumerate()
    {
        let mut run = BespokvRun::new(Mode::MS_SC, 24, mix, Distribution::Zipfian);
        run.strong_read_fraction = 0.25;
        let stats = run.execute(scale);
        r.rows.push(Row::with_latency(
            format!("per-request 25%SC/75%EC {wname}"),
            i as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    // Latency split: all-EC reads vs all-SC reads (paper: 0.67 vs 1.02 ms).
    for (i, (lname, frac)) in [("EC reads", 0.001f64), ("SC reads", 1.0)].into_iter().enumerate() {
        let mut run = BespokvRun::new(Mode::MS_SC, 24, Mix::READ_MOSTLY, Distribution::Zipfian);
        run.strong_read_fraction = frac;
        let stats = run.execute(scale);
        r.rows.push(Row::with_latency(
            format!("latency probe {lname}"),
            2.0 + i as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    // Polyglot persistence: replicas in tHT / tLog / tMT under MS+EC.
    for (i, (wname, mix)) in [
        ("95% GET", Mix::READ_MOSTLY),
        ("50% GET", Mix::UPDATE_INTENSIVE),
    ]
    .into_iter()
    .enumerate()
    {
        let stats = BespokvRun::new(Mode::MS_EC, 24, mix, Distribution::Uniform)
            .with_engines(vec![EngineKind::THt, EngineKind::TLog, EngineKind::TMt])
            .execute(scale);
        r.rows.push(Row::with_latency(
            format!("polyglot tHT+tLog+tMT {wname}"),
            4.0 + i as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    r.note("paper: mixed consistency lands between MS+SC and MS+EC; EC reads 0.67 ms vs SC 1.02 ms; polyglot ~375k/200k QPS at 24 nodes");
    r
}

/// Fig 16: failover timelines (appendix D).
pub fn fig16(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig16",
        "Throughput timeline on failover (Fig 16)",
        ("time s", "kQPS", ""),
    );
    let (total, kill_at) = match scale {
        Scale::Quick => (Duration::from_secs(10), Duration::from_secs(4)),
        Scale::Full => (Duration::from_secs(40), Duration::from_secs(20)),
    };
    struct Case {
        series: &'static str,
        mode: Mode,
        mix: Mix,
        victim: NodeId,
    }
    // The paper plots the PUT and GET series separately (Fig 16's "SC
    // PUT", "EC GET", ...), and its dip fractions assume balanced shards;
    // so each case runs a pure op mix over a uniform keyspace, and each
    // victim is a member of shard 0 (1/3 of the traffic).
    let cases = [
        // MS+SC: kill the head under writes, the tail under reads.
        Case {
            series: "ms+sc PUT (head fails)",
            mode: Mode::MS_SC,
            mix: Mix::read_write(0.0),
            victim: NodeId(0),
        },
        Case {
            series: "ms+sc GET (tail fails)",
            mode: Mode::MS_SC,
            mix: Mix::read_write(1.0),
            victim: NodeId(2),
        },
        Case {
            series: "ms+ec PUT (master fails)",
            mode: Mode::MS_EC,
            mix: Mix::read_write(0.0),
            victim: NodeId(0),
        },
        Case {
            series: "ms+ec GET (slave fails)",
            mode: Mode::MS_EC,
            mix: Mix::read_write(1.0),
            victim: NodeId(1),
        },
        Case {
            series: "aa+ec GET (node fails)",
            mode: Mode::AA_EC,
            mix: Mix::read_write(1.0),
            victim: NodeId(1),
        },
        Case {
            series: "aa+ec PUT (node fails)",
            mode: Mode::AA_EC,
            mix: Mix::read_write(0.0),
            victim: NodeId(1),
        },
    ];
    for case in cases {
        let spec = ClusterSpec::new(3, 3, case.mode)
            .with_standbys(3)
            .with_coord(CoordConfig {
                failure_timeout: Duration::from_millis(1500),
                check_every: Duration::from_millis(500),
            });
        let mut cluster = SimCluster::build(spec);
        let wl_cfg = WorkloadConfig {
            num_keys: scale.keyspace() / 2,
            ..WorkloadConfig::small(case.mix, Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        // The paper's failover clients are redis-benchmark style: fixed
        // moderate demand, no transparent retries — a failed request IS
        // the dip. Sub-saturation load keeps the dip equal to the failed
        // fraction rather than a queueing artifact.
        for c in 0..6u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client_no_retry(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                6,
                Duration::ZERO,
                Duration::from_millis(500),
            );
        }
        cluster.run_for(kill_at);
        cluster.kill_node(case.victim);
        cluster.run_for(total.saturating_sub(kill_at));
        let stats = cluster.collect_stats(total);
        for (t, qps) in stats.timeline.series() {
            r.rows.push(Row::point(case.series, t, qps / 1e3));
        }
    }
    // Dynomite comparison: kill one backend.
    for (sname, mix) in [
        ("dynomite GET (node fails)", Mix::read_write(1.0)),
        ("dynomite PUT (node fails)", Mix::read_write(0.0)),
    ] {
        let mut cluster =
            ProxyCluster::build(ProxyStyle::Dynomite, 3, 3, TransportProfile::socket());
        let wl_cfg = WorkloadConfig {
            num_keys: scale.keyspace() / 2,
            ..WorkloadConfig::small(mix, Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        for c in 0..9u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                8,
                Duration::ZERO,
                Duration::from_millis(500),
            );
        }
        cluster.sim.run_for(kill_at);
        cluster.kill_backend(1);
        let stats = cluster.run_and_collect(Duration::ZERO, total);
        for (t, qps) in stats.timeline.series() {
            r.rows.push(Row::point(sname, t, qps / 1e3));
        }
    }
    r.note(format!(
        "node killed at {:.0} s; 3 shards x 3 replicas; paper: ~1/3 dip on the affected path, ~1/9 for EC slave reads, level restored after recovery",
        kill_at.as_secs_f64()
    ));
    r
}

/// Fig 17 (appendix E): DPDK vs socket latency and throughput.
pub fn fig17(scale: Scale) -> Report {
    let mut r = Report::new(
        "fig17",
        "Kernel-bypass (DPDK) vs socket transport (Fig 17)",
        ("time s", "kQPS", "mean ms"),
    );
    let window = match scale {
        Scale::Quick => Duration::from_secs(2),
        Scale::Full => Duration::from_secs(6),
    };
    let mut summary = Vec::new();
    for (name, profile) in [
        ("socket", TransportProfile::socket()),
        ("dpdk", TransportProfile::dpdk()),
    ] {
        // Single shard like the paper; modest client count so we measure
        // latency rather than saturation.
        let spec = ClusterSpec::new(1, 3, Mode::MS_EC).with_transport(profile);
        let mut cluster = SimCluster::build(spec);
        let wl_cfg = WorkloadConfig {
            num_keys: 10_000,
            ..WorkloadConfig::small(Mix::READ_MOSTLY, Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        for c in 0..4u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                8,
                Duration::from_millis(100),
                Duration::from_millis(250),
            );
        }
        cluster.run_for(Duration::from_millis(100) + window);
        let stats = cluster.collect_stats(window);
        for (t, qps) in stats.timeline.series() {
            r.rows
                .push(Row::with_latency(name, t, qps / 1e3, stats.mean_latency_ms()));
        }
        summary.push((name, stats.kqps(), stats.mean_latency_ms()));
    }
    if summary.len() == 2 {
        let (_, sq, sl) = summary[0];
        let (_, dq, dl) = summary[1];
        r.note(format!(
            "dpdk latency -{:.0}% vs socket; throughput x{:.2} (paper: -65% latency, ~3x throughput, steadier)",
            (1.0 - dl / sl) * 100.0,
            dq / sq
        ));
    }
    r
}

/// Engineering-effort proxy (section VII): line counts of the template vs
/// the engines built on it.
pub fn table_eng(_scale: Scale) -> Report {
    let mut r = Report::new(
        "table-eng",
        "Template-based development effort (section VII)",
        ("component index", "lines of code", ""),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let count = |rel: &str| -> f64 {
        std::fs::read_to_string(root.join(rel))
            .map(|s| {
                s.lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with("//")
                    })
                    .count() as f64
            })
            .unwrap_or(0.0)
    };
    let components = [
        ("datalet template (template.rs)", "crates/datalet/src/template.rs"),
        ("tHT on template", "crates/datalet/src/tht.rs"),
        ("tMT on template", "crates/datalet/src/tmt.rs"),
        ("tLSM engine", "crates/datalet/src/tlsm.rs"),
        ("tLog engine", "crates/datalet/src/tlog.rs"),
        ("controlet common (mod.rs)", "crates/core/src/controlet/mod.rs"),
        ("controlet modes", "crates/core/src/controlet/modes.rs"),
        ("controlet maintenance", "crates/core/src/controlet/maintenance.rs"),
    ];
    for (i, (name, path)) in components.iter().enumerate() {
        r.rows.push(Row::point(*name, i as f64, count(path)));
    }
    r.note("paper: 966-LoC datalet template, 150-LoC controlet template; engines on the template stay small");
    r
}

/// Ablations of the design choices DESIGN.md calls out: propagation batch
/// period (MS+EC), DLM lease length (AA+SC), consistent-hash virtual-node
/// count (load balance), and chain length (MS+SC write latency).
pub fn ablations(scale: Scale) -> Report {
    let mut r = Report::new(
        "ablations",
        "Design-choice ablations (propagation period, DLM lease, vnodes, chain length)",
        ("x", "kQPS", "mean ms"),
    );
    let warmup = scale.warmup();
    let window = scale.window();
    // 1. MS+EC propagation flush period: larger batches cut replication
    //    CPU but stretch the staleness window.
    for flush_us in [500u64, 2_000, 8_000, 32_000] {
        let mut spec = ClusterSpec::new(2, 3, Mode::MS_EC);
        spec.prop_flush_every = Duration::from_micros(flush_us);
        let mut cluster = SimCluster::build(spec);
        let wl_cfg = WorkloadConfig {
            num_keys: 20_000,
            ..WorkloadConfig::small(Mix::UPDATE_INTENSIVE, Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        for c in 0..6u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                16,
                warmup,
                Duration::from_millis(500),
            );
        }
        cluster.run_for(warmup + window);
        let stats = cluster.collect_stats(window);
        r.rows.push(Row::with_latency(
            "ms+ec prop flush period (us)",
            flush_us as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    // 2. DLM lease length under AA+SC: long leases hurt nobody while
    //    holders live; the cost shows on failures (not swept here) — but
    //    the sweep verifies throughput is lease-insensitive.
    for lease_ms in [100u64, 500, 2000] {
        let mut spec = ClusterSpec::new(1, 3, Mode::AA_SC);
        spec.dlm_lease = Duration::from_millis(lease_ms);
        let mut cluster = SimCluster::build(spec);
        let wl_cfg = WorkloadConfig {
            num_keys: 20_000,
            ..WorkloadConfig::small(Mix::UPDATE_INTENSIVE, Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut loader = base.fork(0x10AD);
        cluster.preload((0..wl_cfg.num_keys).map(|i| (loader.key_at(i), loader.value(i))));
        for c in 0..4u64 {
            let mut w = base.fork(c + 1);
            cluster.add_client(
                Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
                8,
                warmup,
                Duration::from_millis(500),
            );
        }
        cluster.run_for(warmup + window);
        let stats = cluster.collect_stats(window);
        r.rows.push(Row::with_latency(
            "aa+sc dlm lease (ms)",
            lease_ms as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    // 3. Virtual-node count: shard load balance of the hash ring
    //    (reported as max/min keys per shard over a uniform keyspace).
    for vnodes in [1u32, 4, 16, 64, 256] {
        let map = bespokv_types::ShardMap::dense(
            8,
            1,
            Mode::MS_EC,
            bespokv_types::Partitioning::ConsistentHash { vnodes },
        );
        let mut counts = [0u64; 8];
        for i in 0..80_000u64 {
            let k = bespokv_workloads::ycsb::make_key(i, 16);
            counts[map.shard_for_key(&k).raw() as usize] += 1;
        }
        let max = *counts.iter().max().expect("shards") as f64;
        let min = *counts.iter().min().expect("shards") as f64;
        r.rows.push(Row::point(
            "hash ring imbalance (max/min) vs vnodes",
            vnodes as f64,
            max / min.max(1.0),
        ));
    }
    // 4. Chain length: MS+SC write latency grows with the chain.
    for repl in [1u32, 2, 3, 5, 7] {
        let mut cluster = SimCluster::build(ClusterSpec::new(1, repl, Mode::MS_SC));
        let wl_cfg = WorkloadConfig {
            num_keys: 5_000,
            ..WorkloadConfig::small(Mix::read_write(0.0), Distribution::Uniform)
        };
        let base = Workload::new(wl_cfg.clone());
        let mut w = base.fork(1);
        cluster.add_client(
            Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
            1, // closed loop of one: measures pure chain latency
            warmup,
            Duration::from_millis(500),
        );
        cluster.run_for(warmup + window);
        let stats = cluster.collect_stats(window);
        r.rows.push(Row::with_latency(
            "ms+sc chain length vs write latency",
            repl as f64,
            stats.kqps(),
            stats.mean_latency_ms(),
        ));
    }
    r.note("expect: bigger prop batches help write throughput slightly; AA+SC insensitive to lease; imbalance shrinks with vnodes; chain latency grows ~linearly with length");
    r
}
