//! Experiment runners regenerating the SC'18 evaluation.
//!
//! Each experiment function produces the rows behind one table or figure
//! of the paper; the `figures` binary prints them and writes CSVs under
//! `results/`. Runs execute on the deterministic simulator (cluster-scale
//! sweeps, timelines) or on real engines/sockets (engine and transport
//! microbenchmarks). `Scale::Quick` shrinks windows and sweeps for smoke
//! runs; `Scale::Full` is the committed configuration reported in
//! EXPERIMENTS.md.

pub mod experiments;
pub mod report;
pub mod runners;

pub use report::{Report, Row};
pub use runners::Scale;
