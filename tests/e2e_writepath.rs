//! Live-runtime end-to-end tests of the flat-combining write path: real
//! threads, real TCP edges, real failover. The simulator oracle proves
//! combined writes consistent under seeded fault schedules; these tests
//! prove the deployment-shaped wiring — TCP worker threads publishing
//! into the op log, one combiner applying batches, the actor replying
//! after replication, gates slamming shut on kill — behaves the same
//! under true parallelism and wall-clock time.

use bespokv_suite::cluster::{ClusterSpec, EdgeStats, LiveCluster, NodeEdge};
use bespokv_suite::coordinator::CoordConfig;
use bespokv_suite::proto::client::{Op, RespBody, Request};
use bespokv_suite::proto::parser::{BinaryParser, ProtocolParser};
use bespokv_suite::runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_suite::types::{
    ClientId, ConsistencyLevel, Duration, Key, Mode, NodeId, RequestId, Value,
};
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn parser_factory() -> Arc<bespokv_suite::runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

fn edge_server(
    cluster: &mut LiveCluster,
    node: u32,
    combine: bool,
) -> (NodeEdge, TcpServer) {
    let table = Arc::clone(cluster.fast_path().expect("combine table built"));
    let edge = NodeEdge::new(NodeId(node), table, cluster.rt.register_mailbox(), false)
        .with_write_combine(combine);
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        edge.handler(),
        ServerOptions {
            worker_threads: Some(4),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    (edge, server)
}

fn req(seq: u32, op: Op) -> Request {
    Request::new(RequestId::compose(ClientId(7100), seq), op)
}

fn put_op(key: &str, value: &str) -> Op {
    Op::Put {
        key: Key::from(key),
        value: Value::from(value),
    }
}

fn get_op(key: &str) -> Op {
    Op::Get {
        key: Key::from(key),
    }
}

/// Pipelined PUTs through the head's combining edge are acked only after
/// chain replication, read their own writes at the tail, and show up in
/// the combiner counters exported through `EdgeStats`.
#[test]
fn live_edge_combines_writes_and_exports_counters() {
    let mut cluster =
        LiveCluster::build(ClusterSpec::new(1, 3, Mode::MS_SC).with_write_combine());
    let table = Arc::clone(cluster.fast_path().unwrap());
    let (_head_edge, head_srv) = edge_server(&mut cluster, 0, true);
    let (_tail_edge, tail_srv) = edge_server(&mut cluster, 2, false);
    let mut head =
        TcpClient::connect(head_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut tail =
        TcpClient::connect(tail_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();

    // Deep pipelining so multiple worker threads hold ops in the log at
    // once and the combiner actually batches.
    let reqs: Vec<Request> = (0..64u32)
        .map(|i| req(i, put_op(&format!("k{i}"), &format!("v{i}"))))
        .collect();
    for resp in head.call_pipelined(&reqs).unwrap() {
        assert!(resp.result.is_ok(), "combined put: {:?}", resp.result);
    }
    // A combined ack means the whole chain applied: the tail must serve
    // every key strongly, no sleep.
    for i in 0..64u32 {
        let mut r = req(1000 + i, get_op(&format!("k{i}")));
        r.level = ConsistencyLevel::Strong;
        let resp = tail.call(&r).unwrap();
        match resp.result {
            Ok(RespBody::Value(v)) => assert_eq!(v.value, Value::from(format!("v{i}"))),
            other => panic!("get k{i}: {other:?}"),
        }
    }

    // Exactly-once: replaying an already-acked RequestId is answered from
    // the reply cache, not ordered a second time.
    let ops_before = table.combiner_snapshot().ops;
    let resp = head.call(&req(0, put_op("k0", "v0"))).unwrap();
    assert!(resp.result.is_ok(), "replay: {:?}", resp.result);
    let snap = table.combiner_snapshot();
    assert_eq!(snap.ops, ops_before, "replay must not re-enter the log");
    assert!(snap.cache_hits >= 1, "replay must hit the reply cache");

    // The counters flow through the measurement harness' EdgeStats.
    let mut stats = EdgeStats::default();
    stats.absorb_combiner(&snap);
    assert!(stats.combiner.batches > 0, "no batches combined");
    assert!(stats.combiner.ops >= 64, "combiner missed writes");
    assert!(stats.to_string().contains("batches"));

    drop(head_srv);
    drop(tail_srv);
    cluster.rt.shutdown();
}

/// Killing the head (the write ingress) slams its write gate shut: edge
/// workers stop publishing into the dead node's op log instantly, and
/// every write acked before the kill survives onto the repaired chain.
#[test]
fn live_kill_head_closes_write_gate_and_keeps_acked_writes() {
    let mut cluster = LiveCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_SC)
            .with_standbys(1)
            .with_coord(CoordConfig {
                failure_timeout: Duration::from_millis(600),
                check_every: Duration::from_millis(100),
            })
            .with_write_combine(),
    );
    let table = Arc::clone(cluster.fast_path().unwrap());
    let (_head_edge, head_srv) = edge_server(&mut cluster, 0, true);
    let (_tail_edge, tail_srv) = edge_server(&mut cluster, 2, false);
    let mut head =
        TcpClient::connect(head_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut tail =
        TcpClient::connect(tail_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();

    let reqs: Vec<Request> = (0..32u32)
        .map(|i| req(i, put_op(&format!("k{i}"), &format!("v{i}"))))
        .collect();
    for resp in head.call_pipelined(&reqs).unwrap() {
        assert!(resp.result.is_ok(), "pre-kill put: {:?}", resp.result);
    }
    assert!(table.combiner_snapshot().ops >= 32, "writes not combined");
    let tail_gate = table.gate(NodeId(2)).expect("tail registered");
    let tail_epoch_before = tail_gate.epoch();

    cluster.kill_node(NodeId(0));
    // The write gate the edge workers share with the dead controlet is
    // closed and the handle deregistered: a racing submit fails the gate
    // check and falls back to the relay, which can only time out — an
    // unacked write is never silently absorbed by a corpse's op log.
    assert!(table.gate(NodeId(0)).is_none());
    head.set_read_timeout(Some(StdDuration::from_secs(5))).unwrap();
    let resp = head.call(&req(500, put_op("k-dead", "x"))).unwrap();
    assert!(resp.result.is_err(), "dead-head write must fail: {:?}", resp.result);

    // Repair: the standby splices in, survivors adopt the new chain at a
    // bumped epoch.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    loop {
        if tail_gate.epoch() > tail_epoch_before && tail_gate.is_open() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "chain never repaired: tail epoch {} (was {})",
            tail_gate.epoch(),
            tail_epoch_before
        );
        std::thread::sleep(StdDuration::from_millis(25));
    }
    // Every acked write survived the failover: combined batches were
    // fully replicated before their acks, so the old tail holds them
    // all. (The repaired chain's strong-read replica is the spliced-in
    // standby; an eventual read is what n2 may still answer.)
    for i in 0..32u32 {
        let mut r = req(2000 + i, get_op(&format!("k{i}")));
        r.level = ConsistencyLevel::Eventual;
        let resp = tail.call(&r).unwrap();
        match resp.result {
            Ok(RespBody::Value(v)) => {
                assert_eq!(v.value, Value::from(format!("v{i}")), "k{i} lost ack")
            }
            other => panic!("post-repair get k{i}: {other:?}"),
        }
    }

    drop(head_srv);
    drop(tail_srv);
    cluster.rt.shutdown();
}
