//! Live-runtime end-to-end tests of the shared-datalet read fast path:
//! real threads, real TCP edges, real failover. The simulator oracle
//! proves the fast path consistent under seeded fault schedules; these
//! tests prove the *deployment-shaped* wiring — `NodeEdge` handlers on
//! TCP worker threads, gate closure on kill, epoch bumps on repair —
//! behaves the same under true parallelism and wall-clock time.

use bespokv_suite::cluster::{ClusterSpec, LiveCluster, NodeEdge};
use bespokv_suite::coordinator::CoordConfig;
use bespokv_suite::proto::client::{Op, Request, RespBody};
use bespokv_suite::proto::parser::{BinaryParser, ProtocolParser};
use bespokv_suite::runtime::tcp::{ServerOptions, TcpClient, TcpServer};
use bespokv_suite::types::{
    ClientId, ConsistencyLevel, Duration, Key, KvError, Mode, NodeId, RequestId, Value,
};
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn parser_factory() -> Arc<bespokv_suite::runtime::tcp::ParserFactory> {
    Arc::new(|| Box::new(BinaryParser::new()) as Box<dyn ProtocolParser>)
}

fn edge_server(cluster: &mut LiveCluster, node: u32, fast_path: bool) -> (NodeEdge, TcpServer) {
    let table = Arc::clone(cluster.fast_path().expect("fast path enabled"));
    let edge = NodeEdge::new(
        NodeId(node),
        table,
        cluster.rt.register_mailbox(),
        fast_path,
    );
    let server = TcpServer::bind_with(
        "127.0.0.1:0",
        parser_factory(),
        edge.handler(),
        ServerOptions {
            worker_threads: Some(4),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    (edge, server)
}

fn req(seq: u32, op: Op) -> Request {
    Request::new(RequestId::compose(ClientId(7000), seq), op)
}

fn put_op(key: &str, value: &str) -> Op {
    Op::Put {
        key: Key::from(key),
        value: Value::from(value),
    }
}

fn get_op(key: &str) -> Op {
    Op::Get {
        key: Key::from(key),
    }
}

/// Writes enter at the head and relay through the actor; GETs at the tail
/// are served by TCP worker threads straight from the shared datalet, and
/// read their own writes.
#[test]
fn live_edge_serves_reads_from_shared_datalet() {
    let mut cluster = LiveCluster::build(ClusterSpec::new(1, 3, Mode::MS_SC).with_fast_path());
    let table = Arc::clone(cluster.fast_path().unwrap());
    let (_head_edge, head_srv) = edge_server(&mut cluster, 0, false);
    let (_tail_edge, tail_srv) = edge_server(&mut cluster, 2, true);
    let mut head = TcpClient::connect(head_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut tail = TcpClient::connect(tail_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();

    for i in 0..20u32 {
        let resp = head.call(&req(i, put_op(&format!("k{i}"), &format!("v{i}")))).unwrap();
        assert!(resp.result.is_ok(), "put k{i}: {:?}", resp.result);
    }
    // A chain ack means the tail applied, so the tail's datalet must
    // already hold every key: no sleep, the read is immediately strong.
    for i in 0..20u32 {
        let resp = tail.call(&req(100 + i, get_op(&format!("k{i}")))).unwrap();
        match resp.result {
            Ok(RespBody::Value(v)) => assert_eq!(v.value, Value::from(format!("v{i}"))),
            other => panic!("get k{i}: {other:?}"),
        }
    }
    assert!(table.total_hits() >= 20, "reads did not take the fast path");

    drop(head_srv);
    drop(tail_srv);
    cluster.rt.shutdown();
}

/// Killing the tail slams its gate shut: edge workers stop serving for it
/// instantly (no stale reads on behalf of a dead node), and once the
/// coordinator repairs the chain, the survivors republish at a higher
/// epoch and the fast path reopens on the new chain.
#[test]
fn live_kill_closes_gate_and_repair_bumps_epoch() {
    let mut cluster = LiveCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_SC)
            .with_standbys(1)
            .with_coord(CoordConfig {
                failure_timeout: Duration::from_millis(600),
                check_every: Duration::from_millis(100),
            })
            .with_fast_path(),
    );
    let table = Arc::clone(cluster.fast_path().unwrap());
    let (_head_edge, head_srv) = edge_server(&mut cluster, 0, false);
    let (_tail_edge, tail_srv) = edge_server(&mut cluster, 2, true);
    let (_mid_edge, mid_srv) = edge_server(&mut cluster, 1, true);
    let mut head = TcpClient::connect(head_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut tail = TcpClient::connect(tail_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();
    let mut mid = TcpClient::connect(mid_srv.local_addr(), Box::new(BinaryParser::new())).unwrap();

    for i in 0..8u32 {
        let resp = head.call(&req(i, put_op(&format!("k{i}"), "v"))).unwrap();
        assert!(resp.result.is_ok(), "put k{i}: {:?}", resp.result);
    }
    let resp = tail.call(&req(50, get_op("k0"))).unwrap();
    assert!(matches!(resp.result, Ok(RespBody::Value(_))));
    let tail_gate = table.gate(NodeId(2)).expect("tail registered");
    let mid_gate = table.gate(NodeId(1)).expect("mid registered");
    assert!(tail_gate.is_open());
    let mid_epoch_before = mid_gate.epoch();

    cluster.kill_node(NodeId(2));
    // The gate the edge threads share with the dead controlet is closed
    // and the handle deregistered — a racing read fails seqlock
    // validation rather than answering for a corpse.
    assert!(!tail_gate.is_open());
    assert!(table.gate(NodeId(2)).is_none());
    // A read addressed to the dead tail falls back to the actor relay,
    // which can only time out — never a silent stale value.
    tail.set_read_timeout(Some(StdDuration::from_secs(5))).unwrap();
    let resp = tail.call(&req(51, get_op("k0"))).unwrap();
    assert!(
        matches!(resp.result, Err(KvError::Timeout)),
        "dead-tail read must fail: {:?}",
        resp.result
    );

    // Repair: the coordinator splices the standby in and the survivors
    // adopt the new chain at a bumped epoch, reopening their gates.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    loop {
        if mid_gate.epoch() > mid_epoch_before && mid_gate.is_open() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "chain never repaired: mid epoch {} (was {})",
            mid_gate.epoch(),
            mid_epoch_before
        );
        std::thread::sleep(StdDuration::from_millis(25));
    }
    // Post-repair the old mid is a clean-read replica on the new chain;
    // with no writes in flight its keys are clean, so a strong read is
    // served on the worker thread from the shared datalet.
    let hits_before = table.total_hits();
    let mut r = Request::new(RequestId::compose(ClientId(7000), 60), get_op("k3"));
    r.level = ConsistencyLevel::Strong;
    let resp = mid.call(&r).unwrap();
    match resp.result {
        Ok(RespBody::Value(v)) => assert_eq!(v.value, Value::from("v")),
        other => panic!("post-repair read: {other:?}"),
    }
    assert!(table.total_hits() > hits_before, "post-repair read fell back");

    drop(head_srv);
    drop(tail_srv);
    drop(mid_srv);
    cluster.rt.shutdown();
}
