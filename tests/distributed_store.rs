//! Repo-level integration: the full stack assembled through the umbrella
//! crate, exercising every mode, the paper's config artifact, and the
//! engine x mode matrix.

use bespokv_suite::bespokv::config::ControlPlaneConfig;
use bespokv_suite::cluster::script::{get, put, ScriptClient};
use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::datalet::EngineKind;
use bespokv_suite::proto::client::RespBody;
use bespokv_suite::types::{ConsistencyLevel, Duration, Mode, Value};

/// The paper's artifact JSON drives cluster construction end to end.
#[test]
fn paper_config_builds_a_working_cluster() {
    let cfg = ControlPlaneConfig::from_json(
        r#"{
            "zk": "127.0.0.1:2181",
            "consistency_model": "strong",
            "consistency_tech": "cr",
            "topology": "ms",
            "num_replicas": "2"
        }"#,
    )
    .unwrap();
    let mode = cfg.mode().unwrap();
    let replication = cfg.replication_factor().unwrap() as u32;
    assert_eq!(mode, Mode::MS_SC);
    assert_eq!(replication, 3);
    let mut cluster = SimCluster::build(ClusterSpec::new(2, replication, mode));
    let client = cluster.add_script_client(vec![put("k", "v"), get("k")]);
    cluster.run_for(Duration::from_secs(3));
    let c = cluster.sim.actor_mut::<ScriptClient>(client);
    assert!(c.done());
    assert!(matches!(&c.results[1], Ok(RespBody::Value(v)) if v.value == Value::from("v")));
}

/// Every engine serves every mode (the multi-backend promise, Table I MB).
#[test]
fn engine_mode_matrix() {
    for engine in [
        EngineKind::THt,
        EngineKind::TMt,
        EngineKind::TLog,
        EngineKind::TLsm,
        EngineKind::TRedis,
        EngineKind::TSsdb,
    ] {
        for mode in Mode::ALL {
            let spec = ClusterSpec::new(1, 3, mode).with_engines(vec![engine]);
            let mut cluster = SimCluster::build(spec);
            let client = cluster.add_script_client(vec![
                put("k", "v"),
                get("k").with_level(ConsistencyLevel::Strong),
            ]);
            cluster.run_for(Duration::from_secs(3));
            let c = cluster.sim.actor_mut::<ScriptClient>(client);
            assert!(c.done(), "{} x {mode}: script stuck", engine.tag());
            assert!(
                matches!(&c.results[1], Ok(RespBody::Value(v)) if v.value == Value::from("v")),
                "{} x {mode}: got {:?}",
                engine.tag(),
                c.results[1]
            );
        }
    }
}

/// Range queries scatter-gather across range-partitioned shards, through
/// the public client API (section IV-B).
#[test]
fn range_query_end_to_end() {
    use bespokv_suite::cluster::script::scan;
    use bespokv_suite::types::{Key, Partitioning};
    let mut spec = ClusterSpec::new(3, 2, Mode::MS_EC).with_engines(vec![EngineKind::TMt]);
    spec.partitioning = Partitioning::Range {
        split_points: vec![Key::from("h"), Key::from("p")],
    };
    let mut cluster = SimCluster::build(spec);
    let mut script = Vec::new();
    for k in ["apple", "grape", "kiwi", "mango", "peach", "plum"] {
        script.push(put(k, "fruit"));
    }
    // Strong-level scan: legs route to the masters, so the freshly
    // written data is visible (an eventual scan may see lagging slaves).
    script.push(scan("a", "z", 0).with_level(ConsistencyLevel::Strong));
    let client = cluster.add_script_client(script);
    cluster.run_for(Duration::from_secs(5));
    let c = cluster.sim.actor_mut::<ScriptClient>(client);
    assert!(c.done());
    match c.results.last().unwrap() {
        Ok(RespBody::Entries(es)) => {
            let keys: Vec<String> = es
                .iter()
                .map(|(k, _)| String::from_utf8_lossy(k.as_bytes()).to_string())
                .collect();
            assert_eq!(
                keys,
                vec!["apple", "grape", "kiwi", "mango", "peach", "plum"],
                "merged in key order across shards"
            );
        }
        other => panic!("scan failed: {other:?}"),
    }
}
