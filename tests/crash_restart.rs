//! Crash-restart oracle sweep: kill -9 + restart-from-disk across all four
//! modes, checked by the durability oracle.
//!
//! Every replica runs a durable engine over a seeded [`CrashDevice`] with
//! `SyncPolicy::Always`: the power cut at `kill_node` can therefore destroy
//! nothing acked. A restarted node replays its surviving local log
//! ([`SimCluster::restart_from_disk`]), rejoins as a standby, and — in
//! master-slave modes, where log order equals version order — advertises
//! its recovered version floor so chain recovery delta-syncs only the
//! writes it missed during the outage instead of pulling a full snapshot
//! (asserted via the transferred-entries counter). After the drain, the
//! durability oracle requires every unambiguous acked write (including
//! deletes) to be visible on every replica, and the convergence oracle
//! requires the restarted node to be indistinguishable from the survivors.

use bespokv_suite::checker::{check_convergence, check_durability, replica_live_map};
use bespokv_suite::cluster::script::{del, put, ScriptClient};
use bespokv_suite::cluster::{ClusterSpec, DurabilityConfig, SimCluster};
use bespokv_suite::datalet::{EngineKind, SyncPolicy, DEFAULT_TABLE};
use bespokv_suite::types::{Duration, Key, Mode, NodeId, ShardId, Value};
use std::collections::BTreeMap;

const SEEDS: [u64; 2] = [3, 9];
const PHASE_A: usize = 20;
const PHASE_B: usize = 12;

/// `BESPOKV_STALL=1` re-runs the crash-restart sweep with gray-failure
/// stall windows on the surviving replicas: a wedge during phase B, a
/// gray partition and a slow-node window during the post-restart drain.
/// The durability and convergence oracles must still pass — a stall that
/// caused an acked-durable write to vanish or a replica to diverge fails
/// the same checks. Phase A stays stall-free: its all-acks assertion is
/// the healthy-cluster baseline the rest of the scenario builds on.
fn stall_enabled() -> bool {
    std::env::var("BESPOKV_STALL").ok().as_deref() == Some("1")
}

fn durable_stalls(seed: u64) -> bespokv_suite::runtime::StallPlan {
    use bespokv_suite::runtime::Addr;
    use bespokv_suite::types::Instant;
    let at = |ms: u64| Instant::ZERO + Duration::from_millis(ms);
    bespokv_suite::runtime::StallPlan::new(seed)
        .with_wedge(Addr(1), at(4200), at(5200))
        .with_gray(Addr(2), at(9000), at(10_500))
        .with_slow(Addr(1), at(12_000), at(13_000), Duration::from_micros(200))
}

fn durable_spec(mode: Mode, engine: EngineKind, sync: SyncPolicy, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(1, 3, mode)
        .with_history()
        .with_durability(DurabilityConfig { engine, sync, seed });
    if stall_enabled() {
        spec = spec.with_stalls(durable_stalls(seed));
    }
    spec
}

/// One crash-restart scenario: phase-A writes land everywhere, node 0 is
/// killed (power cut included) and declared failed, phase-B writes proceed
/// on the survivors, then node 0 restarts *from its own disk* and catches
/// up. Returns nothing — every guarantee is asserted inline.
fn run_crash_restart(mode: Mode, engine: EngineKind, seed: u64) {
    let ms = mode == Mode::MS_SC || mode == Mode::MS_EC;
    let mut cluster = SimCluster::build(durable_spec(mode, engine, SyncPolicy::Always, seed));

    // Phase A: distinct keys, all acked before the crash.
    let phase_a = cluster.add_script_client(
        (0..PHASE_A).map(|i| put(&format!("a{i}"), &format!("av{i}"))).collect(),
    );
    cluster.run_for(Duration::from_secs(3));
    {
        let c = cluster.sim.actor_mut::<ScriptClient>(phase_a);
        assert!(c.done(), "{mode:?} seed {seed}: phase A wedged at {}", c.results.len());
        assert!(
            c.results.iter().all(|r| r.is_ok()),
            "{mode:?} seed {seed}: phase A write failed on a healthy cluster"
        );
    }

    // kill -9 + power cut on node 0's device, deterministic failover.
    cluster.kill_node(NodeId(0));
    cluster.declare_failed(NodeId(0));
    cluster.run_for(Duration::from_millis(500));

    // Phase B: writes (and a delete of a phase-A key) the dead node misses.
    let phase_b = cluster.add_script_client(
        (0..PHASE_B)
            .map(|i| {
                if i == PHASE_B - 1 {
                    del("a3")
                } else {
                    put(&format!("b{i}"), &format!("bv{i}"))
                }
            })
            .collect(),
    );
    cluster.run_for(Duration::from_secs(4));
    let acked_b = {
        let c = cluster.sim.actor_mut::<ScriptClient>(phase_b);
        assert!(c.done(), "{mode:?} seed {seed}: phase B wedged at {}", c.results.len());
        c.results.iter().filter(|r| r.is_ok()).count()
    };
    assert!(
        acked_b >= PHASE_B / 2,
        "{mode:?} seed {seed}: too few phase-B acks ({acked_b}) — cluster never \
         recovered from the kill"
    );

    // Restart from local durable state: under Always, nothing local is lost.
    let report = cluster.restart_from_disk(NodeId(0));
    assert_eq!(
        report.lost_bytes, 0,
        "{mode:?} seed {seed}: SyncPolicy::Always lost bytes: {report:?}"
    );
    assert!(
        report.records >= PHASE_A as u64,
        "{mode:?} seed {seed}: local replay found only {} records",
        report.records
    );
    // Rejoin + recovery + anti-entropy drain.
    cluster.run_for(Duration::from_secs(10));
    if stall_enabled() {
        assert!(
            cluster.sim.stats().stalled > 0,
            "{mode:?} seed {seed}: stall plan armed but no delivery was stalled"
        );
    }

    // The restarted node is a full replica again.
    let replicas: Vec<(NodeId, BTreeMap<Key, Value>)> = cluster
        .dump_replicas(ShardId(0))
        .into_iter()
        .map(|(node, entries)| (node, replica_live_map(entries)))
        .collect();
    assert_eq!(replicas.len(), 3, "{mode:?} seed {seed}: shard still short");
    assert!(
        replicas.iter().any(|(n, _)| *n == NodeId(0)),
        "{mode:?} seed {seed}: node 0 never rejoined its shard"
    );

    // Durability oracle: every unambiguous acked write — phase A, phase B,
    // and the delete — survives the crash-restart on every replica.
    let recorder = cluster.history().expect("history enabled").clone();
    let dur = check_durability(&recorder.events(), &replicas);
    assert!(
        dur.ok(),
        "{mode:?} seed {seed}: acked-durable writes lost: {:#?}",
        dur.violations
    );
    assert!(
        dur.keys_checked >= PHASE_A,
        "{mode:?} seed {seed}: oracle checked only {} keys",
        dur.keys_checked
    );

    // Convergence: the restarted replica serves the same live state as the
    // survivors.
    let conv = check_convergence(&replicas);
    assert!(
        conv.ok(),
        "{mode:?} seed {seed}: restarted replica diverged: {:#?}",
        conv.divergent
    );

    // Delta catch-up vs full snapshot. The store holds PHASE_A + PHASE_B
    // distinct keys; a full snapshot transfers all of them. In MS modes the
    // restarted node advertised its recovered floor, so recovery must have
    // shipped strictly fewer entries (only the phase-B writes). In AA modes
    // per-node version sources make the floor unsound: the node falls back
    // to a full snapshot, which transfers at least the whole key set.
    // Phase B reuses one phase-A key (the delete), hence the -1.
    let total_keys = (PHASE_A + PHASE_B - 1) as u64;
    let transferred = cluster.overload_counters().snapshot().recovery_entries_transferred;
    assert!(transferred > 0, "{mode:?} seed {seed}: no recovery traffic at all");
    if ms {
        assert!(
            transferred < total_keys,
            "{mode:?} seed {seed}: {transferred} entries transferred — floor ignored, \
             full snapshot instead of delta catch-up"
        );
    } else {
        assert!(
            transferred >= total_keys,
            "{mode:?} seed {seed}: only {transferred} entries transferred — AA must \
             full-snapshot (the floor is unsound there)"
        );
    }
}

#[test]
fn crash_restart_ms_sc() {
    for seed in SEEDS {
        run_crash_restart(Mode::MS_SC, EngineKind::TLog, seed);
    }
}

#[test]
fn crash_restart_ms_ec() {
    for seed in SEEDS {
        run_crash_restart(Mode::MS_EC, EngineKind::TLog, seed);
    }
}

#[test]
fn crash_restart_aa_sc() {
    for seed in SEEDS {
        run_crash_restart(Mode::AA_SC, EngineKind::TLog, seed);
    }
}

#[test]
fn crash_restart_aa_ec() {
    for seed in SEEDS {
        run_crash_restart(Mode::AA_EC, EngineKind::TLog, seed);
    }
}

/// The tLSM WAL path through the same machinery (one mode is enough: the
/// engine, not the topology, is what changes).
#[test]
fn crash_restart_ms_sc_tlsm() {
    run_crash_restart(Mode::MS_SC, EngineKind::TLsm, SEEDS[0]);
}

/// Single-replica ground truth, no recovery machinery to help: every write
/// acked under `SyncPolicy::Always` must be served by the restarted engine
/// purely from its own disk.
#[test]
fn single_replica_restart_serves_every_acked_write_from_disk() {
    let mut cluster =
        SimCluster::build(durable_spec(Mode::MS_SC, EngineKind::TLog, SyncPolicy::Always, 42));
    let writer = cluster.add_script_client(
        (0..25).map(|i| put(&format!("k{i}"), &format!("v{i}"))).collect(),
    );
    cluster.run_for(Duration::from_secs(3));
    {
        let c = cluster.sim.actor_mut::<ScriptClient>(writer);
        assert!(c.done(), "writer wedged at {}", c.results.len());
        assert!(c.results.iter().all(|r| r.is_ok()), "write failed on a healthy cluster");
    }

    cluster.kill_node(NodeId(0));
    let report = cluster.restart_from_disk(NodeId(0));
    assert_eq!(report.lost_bytes, 0, "Always lost bytes: {report:?}");
    assert!(report.torn.is_none());

    // Straight off the recovered engine — no chain, no snapshots. The
    // restarted node replicated to nobody, so its disk is the only copy.
    let engine = cluster.datalet_of(NodeId(0)).expect("datalet registered");
    for i in 0..25 {
        let got = engine
            .get(DEFAULT_TABLE, &Key::from(format!("k{i}")))
            .unwrap_or_else(|e| panic!("k{i} lost after restart-from-disk: {e:?}"));
        assert_eq!(got.value, Value::from(format!("v{i}")), "k{i} corrupted");
    }
}

/// Group commit (`SyncPolicy::EveryN`) bounds loss to the unsynced tail:
/// the crash may drop recent writes and tear the last record, but recovery
/// must serve a clean prefix — exact values, never corrupt data — and keep
/// at least everything covered by the last completed sync.
#[test]
fn single_replica_every_n_restart_bounds_loss_and_never_corrupts() {
    for seed in [1u64, 7, 23, 91] {
        let mut cluster = SimCluster::build(durable_spec(
            Mode::MS_SC,
            EngineKind::TLog,
            SyncPolicy::EveryN(4),
            seed,
        ));
        let writer = cluster.add_script_client(
            (0..25).map(|i| put(&format!("k{i}"), &format!("v{i}"))).collect(),
        );
        cluster.run_for(Duration::from_secs(3));
        assert!(cluster.sim.actor_mut::<ScriptClient>(writer).done());

        let synced = cluster
            .crash_device(NodeId(0))
            .expect("durability armed")
            .sync_count();
        assert!(synced >= 6, "seed {seed}: 25 appends at every-4 should sync >= 6 times");

        cluster.kill_node(NodeId(0)); // random cut in the unsynced tail
        let report = cluster.restart_from_disk(NodeId(0));
        // The last completed sync covered at least 24 records.
        assert!(
            report.records >= 24,
            "seed {seed}: lost synced writes ({} records survived)",
            report.records
        );
        let engine = cluster.datalet_of(NodeId(0)).expect("datalet registered");
        assert_eq!(engine.len() as u64, report.records, "seed {seed}");
        // Whatever survived is byte-exact; nothing corrupt is ever served.
        for i in 0..report.records {
            let got = engine.get(DEFAULT_TABLE, &Key::from(format!("k{i}"))).unwrap();
            assert_eq!(got.value, Value::from(format!("v{i}")), "seed {seed}: k{i}");
        }
    }
}
