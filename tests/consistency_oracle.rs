//! Consistency-oracle sweep (the standing correctness gate): every mode the
//! paper evaluates runs a mixed workload under seeded fault injection with a
//! kill + rejoin schedule, the full history is recorded, and the checker
//! decides whether the advertised guarantee actually held:
//!
//! * SC modes (MS+SC, AA+SC): the recorded history must be linearizable,
//!   and the per-session guarantees (monotonic reads, read-your-writes)
//!   must hold as a corollary.
//! * EC modes (MS+EC, AA+EC): after the workload stops and the anti-entropy
//!   machinery drains, all replicas must converge to identical live state.
//! * MS+EC -> MS+SC transition: per-request Strong operations must stay
//!   linearizable *across* the switch (the paper promises no guarantee
//!   regression during transitions), and the replicas must converge.
//!
//! A final test injects a deliberate client-side stale-read bug and asserts
//! the oracle flags it — proof the harness has teeth, not just green lights.

use bespokv_suite::checker::{
    check_convergence, check_linearizable, check_sessions, replica_live_map,
};
use bespokv_suite::cluster::script::{del, get, put, ScriptClient, Step};
use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::coordinator::{CoordConfig, CoordinatorActor};
use bespokv_suite::runtime::{FaultPlan, LinkFaults};
use bespokv_suite::types::{
    ApplyEvent, Consistency, ConsistencyLevel, Duration, HistoryEvent, Key, KvError, Mode,
    NodeId, OverloadConfig, ShardId, SkewConfig, SkewSnapshot, Value,
};
use std::collections::BTreeMap;

/// Fixed seed matrix; CI runs all of them for every mode.
const SEEDS: [u64; 4] = [3, 5, 9, 21];
const DROP_P: f64 = 0.02;

/// Keys the workload cycles over (bounded so the per-key search stays small).
const KEYS: usize = 6;

fn k(i: usize) -> String {
    format!("k{}", i % KEYS)
}

/// A deliberately tight overload configuration for the sweep: a single
/// in-flight chain write at the head, a small queue-delay bound, and low
/// propagation watermarks, so shedding, trims, and resyncs actually fire
/// during the scenario instead of idling at production-sized limits.
fn tight_overload() -> OverloadConfig {
    OverloadConfig {
        head_window: 1,
        max_queue_delay: Some(Duration::from_millis(2)),
        prop_high_watermark: 8,
        prop_low_watermark: 4,
        ..OverloadConfig::default()
    }
}

/// `BESPOKV_SHED=1` re-runs the whole sweep with overload protection armed
/// at the tight limits: every guarantee below must hold *with requests
/// being shed mid-scenario* — a shed write that ever became visible would
/// fail the same linearizability/convergence checks.
fn shed_enabled() -> bool {
    std::env::var("BESPOKV_SHED").ok().as_deref() == Some("1")
}

/// `BESPOKV_WRITE_COMBINE=1` re-runs the whole sweep with the flat-combining
/// write path armed: PUT/DELs publish into the ingress node's op log and are
/// applied in combined batches, and every guarantee below must still hold —
/// a combined write that got lost, duplicated, or reordered would fail the
/// same linearizability/convergence checks.
fn write_combine_enabled() -> bool {
    std::env::var("BESPOKV_WRITE_COMBINE").ok().as_deref() == Some("1")
}

/// `BESPOKV_SKEW=1` re-runs the whole sweep with the skew engine armed:
/// hot-key sketching at every edge, the validating cache on the clean-read
/// path, and clients spreading hot-key strong reads across clean replicas.
/// Every guarantee below must hold with cached serves and spread routing
/// in the mix — a cached value served past the gate's proof, or a spread
/// read landing on a stale replica, would fail the same linearizability
/// checks.
fn skew_enabled() -> bool {
    std::env::var("BESPOKV_SKEW").ok().as_deref() == Some("1")
}

/// `BESPOKV_STALL=1` re-runs the whole sweep with gray-failure stall
/// injection armed: a replica wedged solid mid-outage, a gray partition
/// (heartbeats flow, client traffic stalls) on another, and a slow-node
/// window late in the run. Every guarantee below must hold with nodes
/// that are alive-but-not-making-progress in the mix — a stalled
/// replica serving a stale read, or a wedge-delayed write acked twice,
/// would fail the same linearizability/convergence checks.
fn stall_enabled() -> bool {
    std::env::var("BESPOKV_STALL").ok().as_deref() == Some("1")
}

/// The sweep's stall schedule, seeded like the fault plan. Node 0 is the
/// kill-and-repair target, so stalls aim at the survivors: node 1 wedges
/// during the repair window (detection + recovery must ride through a
/// frozen replica), node 2 goes gray after the repair settles, and node 1
/// runs slow near the drain. Windows use virtual sim time.
fn oracle_stalls(seed: u64) -> bespokv_suite::runtime::StallPlan {
    use bespokv_suite::types::Instant;
    let at = |ms: u64| Instant::ZERO + Duration::from_millis(ms);
    bespokv_suite::runtime::StallPlan::new(seed)
        .with_wedge(bespokv_suite::runtime::Addr(1), at(1000), at(3000))
        .with_gray(bespokv_suite::runtime::Addr(2), at(5000), at(6500))
        .with_slow(
            bespokv_suite::runtime::Addr(1),
            at(8000),
            at(9000),
            Duration::from_micros(200),
        )
}

/// A hair-trigger skew config for the sweep (cf. [`tight_overload`]): the
/// oracle workload touches 6 keys a few dozen times each, far below the
/// production hot threshold, so the sketch must classify hot after a
/// handful of reads for the cache and routing paths to engage at all.
fn tight_skew() -> SkewConfig {
    SkewConfig {
        hot_min_count: 4,
        ..SkewConfig::default()
    }
}

fn oracle_spec(mode: Mode, seed: u64, fast_path: bool, combine: bool) -> ClusterSpec {
    let mut spec = ClusterSpec::new(1, 3, mode)
        .with_standbys(1)
        .with_coord(CoordConfig {
            failure_timeout: Duration::from_millis(1200),
            check_every: Duration::from_millis(200),
        })
        .with_faults(FaultPlan::new(seed).with_default(LinkFaults::lossy(DROP_P)))
        .with_history();
    if shed_enabled() {
        spec = spec.with_overload(tight_overload());
    }
    if fast_path {
        spec = spec.with_fast_path();
    }
    if combine || write_combine_enabled() {
        spec = spec.with_write_combine();
    }
    if skew_enabled() {
        spec = spec.with_skew(tight_skew());
    }
    if stall_enabled() {
        spec = spec.with_stalls(oracle_stalls(seed));
    }
    spec
}

struct RunArtifacts {
    events: Vec<HistoryEvent>,
    applies: Vec<ApplyEvent>,
    replicas: Vec<(NodeId, BTreeMap<Key, Value>)>,
    acked_writes: usize,
    /// Every client's results, in attachment order (determinism compares).
    results: Vec<Vec<Result<bespokv_suite::proto::RespBody, bespokv_suite::types::KvError>>>,
    /// Fast-path serves / fallbacks across all nodes (0/0 when disabled).
    fast_hits: u64,
    fast_fallbacks: u64,
    /// Writes that went through the combiner (0 when disabled).
    combined_ops: u64,
    /// Skew-engine counters across all edges (zeroes when disabled).
    skew: SkewSnapshot,
}

/// One kill + rejoin scenario: two writers and a reader share a small
/// keyspace while node 0 is crashed mid-workload under packet loss; after
/// the coordinator repairs onto the standby, the dead node is restarted as
/// a fresh standby (rejoin). Every operation is recorded.
fn run_fault_scenario(mode: Mode, seed: u64, fast_path: bool, combine: bool) -> RunArtifacts {
    let mut cluster = SimCluster::build(oracle_spec(mode, seed, fast_path, combine));
    // Unique values per (client, op) so the checker can anchor writes.
    // Scripts are long enough that steps are still being issued when the
    // repair lands (~2 s in): during the outage each step burns its retry
    // budget in ~400 ms, so post-repair acks — the proof of recovery —
    // need steps left over, for every seed and schedule.
    let writer_a = cluster.add_script_client(
        (0..40).map(|i| put(&k(i), &format!("a{i}"))).collect(),
    );
    let writer_b = cluster.add_script_client(
        (0..28)
            .map(|i| {
                if i % 7 == 6 {
                    del(&k(i))
                } else {
                    put(&k(i), &format!("b{i}"))
                }
            })
            .collect(),
    );
    // Long enough that plenty of reads land after the first group-commit
    // flush window (~1 ms) — early reads legitimately observe "absent".
    let reader = cluster.add_script_client((0..48).map(|i| get(&k(i))).collect());

    cluster.run_for(Duration::from_millis(400));
    cluster.kill_node(NodeId(0));
    // Failure detection + repair + recovery + workload retries.
    cluster.run_for(Duration::from_secs(12));
    // Rejoin: the crashed node comes back empty and re-registers as standby.
    cluster.restart_as_standby(NodeId(0));
    // Drain: scripts finish and EC anti-entropy catches every replica up.
    cluster.run_for(Duration::from_secs(10));

    for (name, addr) in [("writer_a", writer_a), ("writer_b", writer_b), ("reader", reader)] {
        let c = cluster.sim.actor_mut::<ScriptClient>(addr);
        assert!(
            c.done(),
            "{mode:?} seed {seed}: {name} wedged at {}/{}",
            c.results.len(),
            c.script_len()
        );
    }
    let acked_writes = [writer_a, writer_b]
        .iter()
        .map(|&a| {
            let c = cluster.sim.actor_mut::<ScriptClient>(a);
            c.results.iter().filter(|r| r.is_ok()).count()
        })
        .sum();
    let results = [writer_a, writer_b, reader]
        .iter()
        .map(|&a| cluster.sim.actor_mut::<ScriptClient>(a).results.clone())
        .collect();
    let (fast_hits, fast_fallbacks) = cluster
        .fast_path()
        .map(|t| (t.total_hits(), t.total_fallbacks()))
        .unwrap_or((0, 0));
    let combined_ops = cluster
        .fast_path()
        .map(|t| t.combiner_snapshot().ops)
        .unwrap_or(0);
    let skew = cluster.skew_snapshot();

    if stall_enabled() {
        // If the plan never held a message, the sweep is vacuously green.
        assert!(
            cluster.sim.stats().stalled > 0,
            "{mode:?} seed {seed}: stall plan armed but no delivery was stalled"
        );
    }
    let recorder = cluster.history().expect("history enabled").clone();
    let replicas = cluster
        .dump_replicas(ShardId(0))
        .into_iter()
        .map(|(node, entries)| (node, replica_live_map(entries)))
        .collect();
    RunArtifacts {
        events: recorder.events(),
        applies: recorder.applies(),
        replicas,
        acked_writes,
        results,
        fast_hits,
        fast_fallbacks,
        combined_ops,
        skew,
    }
}

fn check_mode_under_faults(mode: Mode, fast_path: bool, combine: bool) {
    let combining = combine || write_combine_enabled();
    for seed in SEEDS {
        let run = run_fault_scenario(mode, seed, fast_path, combine);
        if combining {
            if mode == Mode::MS_SC || mode == Mode::MS_EC {
                // The head/master is the write ingress; its gate opens, so
                // writes must actually flow through the combiner.
                assert!(
                    run.combined_ops > 0,
                    "{mode:?} seed {seed}: combining enabled but no write combined"
                );
            } else {
                // AA modes have no single write ingress: the write gate
                // never opens and every write must fall back to the actor.
                assert_eq!(
                    run.combined_ops, 0,
                    "{mode:?} seed {seed}: AA must never combine writes"
                );
            }
        }
        if fast_path {
            // The fast path must actually carry reads — except under
            // AA+SC, where every Default read resolves to Strong and
            // Strong is never fast-path-eligible under AA.
            if mode == Mode::AA_SC {
                assert_eq!(
                    run.fast_hits, 0,
                    "seed {seed}: AA+SC must never serve strong reads off the fast path"
                );
                assert!(run.fast_fallbacks > 0, "seed {seed}: gate never consulted");
            } else {
                assert!(
                    run.fast_hits > 0,
                    "{mode:?} seed {seed}: fast path enabled but served nothing"
                );
            }
        }
        if skew_enabled() {
            // The sketch taps every edge-intercepted GET, whatever the
            // permit outcome — if it saw nothing, the engine wasn't wired.
            assert!(
                run.skew.sketch_ops > 0,
                "{mode:?} seed {seed}: skew armed but the sketch saw no reads"
            );
            if mode == Mode::AA_SC || mode == Mode::AA_EC {
                // The validating cache serves (and fills) only under a
                // `ServeIfClean` grant. AA gates never publish
                // STRONG_CLEAN — no chain position proves a replica
                // clean — so the cache must stay stone cold: any fill or
                // hit here is a serve the gate never justified.
                assert_eq!(
                    (run.skew.cache_fills, run.skew.cache_hits),
                    (0, 0),
                    "{mode:?} seed {seed}: cache active without a ServeIfClean grant"
                );
            }
        }
        // During the outage window, steps burn their retry budget quickly
        // and fail back to the script (which marches on), so only a floor
        // is asserted: enough acked writes to prove the cluster recovered
        // and the history is meaningful.
        assert!(
            run.acked_writes >= 8,
            "{mode:?} seed {seed}: too few acked writes ({}) — cluster never recovered",
            run.acked_writes
        );
        assert!(
            run.events.len() >= 40,
            "{mode:?} seed {seed}: history suspiciously small ({} events)",
            run.events.len()
        );
        match mode.consistency {
            Consistency::Strong => {
                let lin = check_linearizable(&run.events, &BTreeMap::new());
                assert!(
                    lin.ok(),
                    "{mode:?} seed {seed}: history not linearizable: {:#?}",
                    lin.violations
                );
                assert!(lin.ops > 0, "{mode:?} seed {seed}: nothing checked");
                let sess = check_sessions(&run.events, &run.applies);
                assert!(
                    sess.ok(),
                    "{mode:?} seed {seed}: session guarantees broken: {sess:#?}"
                );
                assert!(sess.reads_checked > 0);
            }
            Consistency::Eventual => {
                let conv = check_convergence(&run.replicas);
                assert_eq!(conv.replicas, 3, "{mode:?} seed {seed}: wrong replica count");
                assert!(
                    conv.ok(),
                    "{mode:?} seed {seed}: replicas diverged after quiescence: {:#?}",
                    conv.divergent
                );
                assert!(conv.keys > 0, "{mode:?} seed {seed}: empty final state");
            }
        }
    }
}

#[test]
fn oracle_ms_sc_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_SC, false, false);
}

#[test]
fn oracle_ms_ec_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_EC, false, false);
}

#[test]
fn oracle_aa_sc_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::AA_SC, false, false);
}

#[test]
fn oracle_aa_ec_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::AA_EC, false, false);
}

// Same scenarios with the shared-datalet read fast path enabled: reads are
// served off edge interception whenever the serving gate permits, and the
// exact same oracle must hold — the fast path is invisible to correctness.

#[test]
fn oracle_ms_sc_fastpath_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_SC, true, false);
}

#[test]
fn oracle_ms_ec_fastpath_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_EC, true, false);
}

#[test]
fn oracle_aa_sc_fastpath_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::AA_SC, true, false);
}

#[test]
fn oracle_aa_ec_fastpath_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::AA_EC, true, false);
}

// Same scenarios with the flat-combining write path enabled: writes publish
// into the ingress node's op log and are applied in combined batches, and
// the exact same oracle must hold — combining is invisible to correctness.

#[test]
fn oracle_ms_sc_write_combine_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_SC, false, true);
}

#[test]
fn oracle_ms_ec_write_combine_kill_rejoin_under_faults() {
    check_mode_under_faults(Mode::MS_EC, false, true);
}

/// Determinism gate for the combined write path: the same spec and seed
/// must replay to bit-identical client results, replica contents, and
/// combiner activity.
#[test]
fn oracle_write_combine_same_seed_runs_are_identical() {
    let seed = SEEDS[1];
    let a = run_fault_scenario(Mode::MS_SC, seed, false, true);
    let b = run_fault_scenario(Mode::MS_SC, seed, false, true);
    assert_eq!(a.results, b.results, "seed {seed}: client results diverged");
    assert_eq!(a.replicas, b.replicas, "seed {seed}: replica state diverged");
    assert_eq!(a.combined_ops, b.combined_ops, "seed {seed}: combiner diverged");
    assert_eq!(a.acked_writes, b.acked_writes, "seed {seed}");
}

/// Killing the write ingress (the head) with writes mid-combine: the kill
/// slams the write gate shut and deregisters the node, the unprocessed
/// remainder of the op log dies with the controlet *unacked*, and every
/// write that WAS acked — combined batches fully replicated before their
/// acks — survives verbatim on every replica of the repaired chain.
#[test]
fn oracle_write_combine_gate_close_on_kill_preserves_acked_writes() {
    let mut cluster = SimCluster::build(oracle_spec(Mode::MS_SC, 7, false, true));
    // Distinct keys, one sequential writer: an acked put is never
    // overwritten, so it must appear verbatim in the final state.
    let writer = cluster.add_script_client(
        (0..40)
            .map(|i| put(&format!("wc{i}"), &format!("v{i}")))
            .collect(),
    );
    cluster.run_for(Duration::from_millis(400));
    let t = std::sync::Arc::clone(cluster.fast_path().expect("combine table built"));
    assert!(
        t.combiner_snapshot().ops > 0,
        "head never combined a write before the kill"
    );

    cluster.kill_node(NodeId(0));
    assert!(
        t.gate(NodeId(0)).is_none(),
        "killed head must be unregistered from the edge table"
    );
    // Failure detection + chain splice + recovery onto the standby, then
    // rejoin and drain.
    cluster.run_for(Duration::from_secs(12));
    cluster.restart_as_standby(NodeId(0));
    cluster.run_for(Duration::from_secs(10));

    let c = cluster.sim.actor_mut::<ScriptClient>(writer);
    assert!(c.done(), "writer wedged at {}/{}", c.results.len(), c.script_len());
    let acked: Vec<usize> = c
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_ok())
        .map(|(i, _)| i)
        .collect();
    assert!(
        acked.len() >= 8,
        "too few acked writes ({}) — cluster never recovered",
        acked.len()
    );

    // Zero lost acks: every acked combined put is present, with its exact
    // value, on every replica of the repaired chain.
    let replicas: Vec<(NodeId, BTreeMap<Key, Value>)> = cluster
        .dump_replicas(ShardId(0))
        .into_iter()
        .map(|(node, entries)| (node, replica_live_map(entries)))
        .collect();
    for (node, live) in &replicas {
        for &i in &acked {
            assert_eq!(
                live.get(&Key::from(format!("wc{i}"))),
                Some(&Value::from(format!("v{i}"))),
                "replica {node} lost acked combined write wc{i}"
            );
        }
    }
    // And the recorded history, combiner in the path, still linearizes —
    // no duplicated or resurrected acked write either.
    let recorder = cluster.history().expect("history enabled").clone();
    let lin = check_linearizable(&recorder.events(), &BTreeMap::new());
    assert!(
        lin.ok(),
        "combined history not linearizable: {:#?}",
        lin.violations
    );
}

/// Determinism gate for the whole stack — group-commit batching, fault
/// injection, and the fast path together: the same spec and seed must
/// replay to bit-identical client results, replica contents, and fast-path
/// counters.
#[test]
fn oracle_fastpath_same_seed_runs_are_identical() {
    for seed in [SEEDS[0], SEEDS[2]] {
        let a = run_fault_scenario(Mode::MS_SC, seed, true, false);
        let b = run_fault_scenario(Mode::MS_SC, seed, true, false);
        assert_eq!(a.results, b.results, "seed {seed}: client results diverged");
        assert_eq!(a.replicas, b.replicas, "seed {seed}: replica state diverged");
        assert_eq!(
            (a.fast_hits, a.fast_fallbacks),
            (b.fast_hits, b.fast_fallbacks),
            "seed {seed}: fast-path counters diverged"
        );
        assert_eq!(a.acked_writes, b.acked_writes, "seed {seed}");
    }
}

/// The fast path must slam shut on failover: killing the serving node
/// closes its gate immediately, and the repaired configuration publishes a
/// bumped epoch on the survivors — so no in-progress read can validate
/// across the reconfiguration.
#[test]
fn oracle_fastpath_gate_closes_on_kill_and_bumps_epoch_on_repair() {
    let mut cluster = SimCluster::build(oracle_spec(Mode::MS_SC, 7, true, false));
    cluster.run_for(Duration::from_millis(500));
    let t = std::sync::Arc::clone(cluster.fast_path().expect("fast path enabled"));

    let tail_gate = t.gate(NodeId(2)).expect("tail registered");
    assert!(tail_gate.is_open(), "tail gate open before the fault");
    let epoch_before = tail_gate.epoch();

    cluster.kill_node(NodeId(0));
    assert!(
        t.gate(NodeId(0)).is_none(),
        "killed node must be unregistered from the fast path"
    );
    // Failure detection + chain splice + recovery onto the standby.
    cluster.run_for(Duration::from_secs(12));
    assert!(
        tail_gate.epoch() > epoch_before,
        "surviving tail must republish a bumped epoch after repair \
         (before {epoch_before}, after {})",
        tail_gate.epoch()
    );
    assert!(tail_gate.is_open(), "tail serves again after repair");
}

/// MS+EC -> MS+SC transition with history: operations issued before, during
/// and after the switch. Writes and per-request Strong reads serialize at
/// the master (whose datalet the new head inherits), so that sub-history
/// must be linearizable end-to-end — the "no guarantee regression" claim.
/// Default-consistency reads stay EC and are only required to converge.
#[test]
fn oracle_ms_ec_to_ms_sc_transition() {
    let mut cluster = SimCluster::build(ClusterSpec::new(1, 3, Mode::MS_EC).with_history());
    let seed: Vec<Step> = (0..KEYS)
        .flat_map(|i| {
            vec![
                put(&k(i), &format!("seed{i}")),
                get(&k(i)).with_level(ConsistencyLevel::Strong),
            ]
        })
        .collect();
    let seeder = cluster.add_script_client(seed);
    cluster.run_for(Duration::from_secs(2));
    assert!(cluster.sim.actor_mut::<ScriptClient>(seeder).done());

    let new_nodes = cluster.start_transition(ShardId(0), Mode::MS_SC);
    let during = cluster.add_script_client(
        (0..8)
            .flat_map(|i| {
                vec![
                    put(&k(i), &format!("mid{i}")),
                    get(&k(i)).with_level(ConsistencyLevel::Strong),
                    get(&k(i)), // EC read: liveness only
                ]
            })
            .collect(),
    );
    cluster.run_for(Duration::from_secs(4));
    assert!(cluster.sim.actor_mut::<ScriptClient>(during).done());

    // Committed: new mode, new replica set.
    let info = cluster
        .sim
        .actor_mut::<CoordinatorActor>(cluster.coordinator)
        .core()
        .map()
        .shard(ShardId(0))
        .unwrap()
        .clone();
    assert_eq!(info.mode, Mode::MS_SC);
    assert_eq!(info.replicas, new_nodes);

    let post = cluster.add_script_client(
        (0..KEYS)
            .flat_map(|i| vec![put(&k(i), &format!("post{i}")), get(&k(i))])
            .collect(),
    );
    cluster.run_for(Duration::from_secs(4));
    assert!(cluster.sim.actor_mut::<ScriptClient>(post).done());

    let recorder = cluster.history().expect("history enabled").clone();
    // The linearizable core: every write, plus reads that were Strong by
    // request or ran after the commit to MS+SC (where Default = Strong).
    let strong_core: Vec<HistoryEvent> = recorder
        .events()
        .into_iter()
        .filter(|e| e.op.is_write() || e.level == ConsistencyLevel::Strong)
        .collect();
    let lin = check_linearizable(&strong_core, &BTreeMap::new());
    assert!(
        lin.ok(),
        "strong ops regressed across the MS+EC -> MS+SC transition: {:#?}",
        lin.violations
    );
    assert!(lin.ops >= 2 * KEYS, "transition history too thin");

    let replicas: Vec<(NodeId, BTreeMap<Key, Value>)> = cluster
        .dump_replicas(ShardId(0))
        .into_iter()
        .map(|(node, entries)| (node, replica_live_map(entries)))
        .collect();
    let conv = check_convergence(&replicas);
    assert!(
        conv.ok(),
        "replicas diverged across the transition: {:#?}",
        conv.divergent
    );
    assert_eq!(conv.keys, KEYS, "every key survived the transition");
}

/// The transition variant with the fast path enabled: the old controlets'
/// gates must close when the switch begins (quiesce) and stay closed once
/// they are out of the replica set, the replacement controlets' gates only
/// open under the new mode — and the strong sub-history must remain
/// linearizable with edge-served reads in the mix.
#[test]
fn oracle_ms_ec_to_ms_sc_transition_fastpath() {
    let mut cluster = SimCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_EC)
            .with_history()
            .with_fast_path(),
    );
    let seed: Vec<Step> = (0..KEYS)
        .flat_map(|i| {
            vec![
                put(&k(i), &format!("seed{i}")),
                get(&k(i)).with_level(ConsistencyLevel::Strong),
                get(&k(i)),
            ]
        })
        .collect();
    let seeder = cluster.add_script_client(seed);
    cluster.run_for(Duration::from_secs(2));
    assert!(cluster.sim.actor_mut::<ScriptClient>(seeder).done());
    let t = std::sync::Arc::clone(cluster.fast_path().expect("fast path enabled"));
    assert!(
        t.total_hits() > 0,
        "MS+EC reads should serve off the fast path before the transition"
    );
    let old_master_gate = t.gate(NodeId(0)).expect("old master registered");
    assert!(old_master_gate.is_open());

    let new_nodes = cluster.start_transition(ShardId(0), Mode::MS_SC);
    let during = cluster.add_script_client(
        (0..8)
            .flat_map(|i| {
                vec![
                    put(&k(i), &format!("mid{i}")),
                    get(&k(i)).with_level(ConsistencyLevel::Strong),
                    get(&k(i)),
                ]
            })
            .collect(),
    );
    cluster.run_for(Duration::from_secs(4));
    assert!(cluster.sim.actor_mut::<ScriptClient>(during).done());

    // The old master quiesced (and left the replica set): its gate is shut
    // for good. The new tail serves strong reads under the new mode.
    assert!(
        !old_master_gate.is_open(),
        "old master's gate must close across the transition"
    );
    let new_tail = *new_nodes.last().expect("replicas");
    let new_tail_gate = t.gate(new_tail).expect("new tail registered");
    assert!(
        new_tail_gate.is_open(),
        "new tail must serve once the transition commits"
    );

    let recorder = cluster.history().expect("history enabled").clone();
    let strong_core: Vec<HistoryEvent> = recorder
        .events()
        .into_iter()
        .filter(|e| e.op.is_write() || e.level == ConsistencyLevel::Strong)
        .collect();
    let lin = check_linearizable(&strong_core, &BTreeMap::new());
    assert!(
        lin.ok(),
        "strong ops regressed across the fast-path transition: {:#?}",
        lin.violations
    );

    let replicas: Vec<(NodeId, BTreeMap<Key, Value>)> = cluster
        .dump_replicas(ShardId(0))
        .into_iter()
        .map(|(node, entries)| (node, replica_live_map(entries)))
        .collect();
    let conv = check_convergence(&replicas);
    assert!(conv.ok(), "replicas diverged: {:#?}", conv.divergent);
}

/// Shedding safety, always on (no env var needed): six concurrent writers
/// hammer one MS+SC chain whose head admits a single in-flight write, with
/// client retries disabled so every shed surfaces as a final
/// `Err(Overloaded)`. The invariant under test is the one that makes
/// shedding safe at all: `Overloaded` is returned strictly *before*
/// execution, so a shed write must never be observed — not by any read in
/// the recorded history, and not in any replica's final state.
#[test]
fn oracle_shed_writes_never_become_violations() {
    let ocfg = OverloadConfig {
        retry_tokens: 0,
        ..tight_overload()
    };
    let mut cluster = SimCluster::build(
        ClusterSpec::new(1, 3, Mode::MS_SC)
            .with_history()
            .with_overload(ocfg),
    );
    let writers: Vec<_> = (0..6)
        .map(|w| {
            cluster.add_script_client(
                (0..30).map(|i| put(&k(i), &format!("w{w}v{i}"))).collect(),
            )
        })
        .collect();
    cluster.run_for(Duration::from_secs(30));

    let mut shed_values = Vec::new();
    let mut acked = 0usize;
    for (w, &addr) in writers.iter().enumerate() {
        let c = cluster.sim.actor_mut::<ScriptClient>(addr);
        assert!(c.done(), "writer {w} wedged at {}/{}", c.results.len(), c.script_len());
        for (i, r) in c.results.clone().into_iter().enumerate() {
            match r {
                Ok(_) => acked += 1,
                Err(KvError::Overloaded) => shed_values.push(Value::from(format!("w{w}v{i}"))),
                Err(_) => {}
            }
        }
    }
    assert!(acked > 0, "head admitted nothing");
    assert!(
        !shed_values.is_empty(),
        "six writers against a one-deep head window never shed — overload \
         protection is not engaging"
    );
    let snap = cluster.overload_counters().snapshot();
    assert!(
        snap.total_shed() >= shed_values.len() as u64,
        "sheds happened but the counters missed them: {snap}"
    );

    // The oracle proper: the history (where every shed write is recorded
    // as never-happened) must still linearize.
    let recorder = cluster.history().expect("history enabled").clone();
    let lin = check_linearizable(&recorder.events(), &BTreeMap::new());
    assert!(
        lin.ok(),
        "a shed write became a consistency violation: {:#?}",
        lin.violations
    );

    // Belt and braces: no shed value may exist in any replica.
    for (node, entries) in cluster.dump_replicas(ShardId(0)) {
        let live = replica_live_map(entries);
        for v in live.values() {
            assert!(
                !shed_values.contains(v),
                "replica {node} holds a value whose write was shed: {v:?}"
            );
        }
    }
}

/// Teeth test: a client with the dev-only stale-read bug (repeated Gets
/// replay the first observed value) must produce a history the
/// linearizability checker rejects — on a cluster that is otherwise
/// perfectly healthy, so the only possible culprit is the injected bug.
#[test]
fn oracle_catches_injected_stale_read_bug() {
    let mut cluster = SimCluster::build(ClusterSpec::new(1, 3, Mode::MS_SC).with_history());
    let buggy = cluster.add_script_client_debug_stale(vec![
        put("k", "first"),
        get("k"),
        put("k", "second"),
        get("k"), // replays "first": a stale read the oracle must flag
    ]);
    cluster.run_for(Duration::from_secs(3));
    let c = cluster.sim.actor_mut::<ScriptClient>(buggy);
    assert!(c.done(), "script wedged: {:?}", c.results);
    assert!(c.results.iter().all(|r| r.is_ok()), "healthy cluster: {:?}", c.results);

    let recorder = cluster.history().expect("history enabled").clone();
    let lin = check_linearizable(&recorder.events(), &BTreeMap::new());
    assert!(
        !lin.ok(),
        "oracle failed to flag the injected stale read (checker has no teeth)"
    );
    assert_eq!(lin.violations[0].key, Key::from("k"));

    // Control: the identical script without the bug passes.
    let mut cluster = SimCluster::build(ClusterSpec::new(1, 3, Mode::MS_SC).with_history());
    let clean = cluster.add_script_client(vec![
        put("k", "first"),
        get("k"),
        put("k", "second"),
        get("k"),
    ]);
    cluster.run_for(Duration::from_secs(3));
    assert!(cluster.sim.actor_mut::<ScriptClient>(clean).done());
    let recorder = cluster.history().expect("history enabled").clone();
    let lin = check_linearizable(&recorder.events(), &BTreeMap::new());
    assert!(lin.ok(), "clean control run must pass: {:#?}", lin.violations);
}

