//! Vendored, dependency-free reimplementation of the subset of the
//! [`bytes`](https://docs.rs/bytes) API that bespoKV uses.
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace resolves `bytes` to this shim (see `vendor/README.md`). The
//! semantics the codebase relies on are preserved:
//!
//! * [`Bytes`] is a cheaply clonable, reference-counted view into an
//!   immutable buffer. `clone`/`split_to`/`slice` are O(1) and share the
//!   backing allocation — the zero-copy decode path depends on this.
//! * [`BytesMut`] is a growable buffer with an amortized consumed-prefix
//!   reclaim in [`BytesMut::reserve`], so long-lived connection buffers do
//!   not creep.
//! * [`Buf`]/[`BufMut`] carry the little-endian integer accessors the wire
//!   codec uses.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply clonable, immutable, reference-counted byte buffer view.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[inline]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without allocating.
    #[inline]
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies a slice into a fresh owned buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    /// O(1): both halves share the backing buffer.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            repr: self.repr.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Splits off and returns the bytes after `n`; `self` keeps the prefix.
    pub fn split_off(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            repr: self.repr.clone(),
            start: self.start + n,
            end: self.end,
        };
        self.end = self.start + n;
        tail
    }

    /// A sub-view over `range` (O(1), shared backing buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            repr: self.repr.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

// Deliberately NOT implemented: `From<&[u8]>` (upstream only has
// `From<&'static [u8]>`), `From<&Bytes>`, `From<&BytesMut>`. Convenience
// conversions beyond the real `bytes` 1.x API live in repo-owned code
// (`bespokv_proto::wire::IntoWireBytes`) so the workspace never drifts onto
// shim-only surface and can still build against the upstream crate.

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

// ---------------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------------

/// A growable byte buffer with consumed-prefix reclaim.
///
/// `advance`/`split_to` move a logical read cursor instead of shifting data;
/// [`BytesMut::reserve`] compacts the consumed prefix away once it dominates
/// the buffer, so a long-lived connection buffer stays bounded by its live
/// contents rather than its history.
#[derive(Default)]
pub struct BytesMut {
    vec: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub const fn new() -> Self {
        BytesMut {
            vec: Vec::new(),
            start: 0,
        }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Bytes currently readable.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len() - self.start
    }

    /// Whether no bytes are readable.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writable capacity remaining before reallocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.vec.capacity() - self.start
    }

    /// Drops all contents (keeps the allocation).
    pub fn clear(&mut self) {
        self.vec.clear();
        self.start = 0;
    }

    /// Ensures space for `additional` more bytes, reclaiming the consumed
    /// prefix when it outweighs the live contents.
    pub fn reserve(&mut self, additional: usize) {
        if self.start > 0 && (self.start >= self.vec.len() || self.start > self.vec.capacity() / 2)
        {
            self.compact();
        }
        self.vec.reserve(additional);
    }

    fn compact(&mut self) {
        self.vec.drain(..self.start);
        self.start = 0;
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Consumes the first `n` readable bytes (O(1) cursor move).
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        if self.start == self.vec.len() {
            // Everything consumed: reset for free instead of compacting later.
            self.vec.clear();
            self.start = 0;
        }
    }

    /// Removes and returns the first `n` bytes as a new buffer.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.vec[self.start..self.start + n].to_vec();
        self.advance(n);
        BytesMut {
            vec: head,
            start: 0,
        }
    }

    /// Shortens the readable contents to `n` bytes.
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.vec.truncate(self.start + n);
        }
    }

    /// Resizes the readable contents to `n` bytes, filling with `value`.
    pub fn resize(&mut self, n: usize, value: u8) {
        self.vec.resize(self.start + n, value);
    }

    /// Converts into an immutable [`Bytes`] without copying the contents.
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.compact();
        }
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec[self.start..]
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        let s = self.start;
        &mut self.vec[s..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for BytesMut {}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        BytesMut {
            vec: self[..].to_vec(),
            start: 0,
        }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

// ---------------------------------------------------------------------------
// Buf / BufMut
// ---------------------------------------------------------------------------

macro_rules! get_le {
    ($name:ident, $ty:ty) => {
        /// Reads a little-endian integer and advances past it.
        fn $name(&mut self) -> $ty {
            const N: usize = std::mem::size_of::<$ty>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$ty>::from_le_bytes(raw)
        }
    };
}

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable contents.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    get_le!(get_u16_le, u16);
    get_le!(get_u32_le, u32);
    get_le!(get_u64_le, u64);
    get_le!(get_i64_le, i64);

    /// Reads a little-endian `f64` and advances past it.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! put_le {
    ($name:ident, $ty:ty) => {
        /// Appends a little-endian integer.
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// Append access to a growable buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(put_u16_le, u16);
    put_le!(put_u32_le, u32);
    put_le!(put_u64_le, u64);
    put_le!(put_i64_le, i64);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_split_shares_backing() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let base = b.as_slice().as_ptr();
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(head.as_slice().as_ptr(), base);
        assert_eq!(b.as_slice().as_ptr(), unsafe { base.add(2) });
    }

    #[test]
    fn bytes_clone_is_refcount_bump() {
        let b = Bytes::from(vec![9u8; 64]);
        let c = b.clone();
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn bytesmut_roundtrip_ints() {
        let mut m = BytesMut::new();
        m.put_u32_le(0xdead_beef);
        m.put_u8(7);
        m.put_u64_le(u64::MAX);
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert!(b.is_empty());
    }

    #[test]
    fn bytesmut_reserve_reclaims_consumed_prefix() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(&[0u8; 48]);
        m.advance(40);
        assert_eq!(m.len(), 8);
        m.reserve(16);
        // After compaction the live bytes moved to the front.
        assert_eq!(m.start, 0);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn bytesmut_advance_resets_when_emptied() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        m.advance(6);
        assert_eq!(m.start, 0);
        assert_eq!(m.vec.len(), 0);
    }

    #[test]
    fn freeze_after_advance_drops_prefix() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"xxhello");
        m.advance(2);
        assert_eq!(&m.freeze()[..], b"hello");
    }
}
