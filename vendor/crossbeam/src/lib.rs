//! Vendored, dependency-free shim of `crossbeam::channel`.
//!
//! Implements MPMC channels (both ends clonable) over a `Mutex<VecDeque>` +
//! two condvars — not as fast as real crossbeam, but semantically faithful:
//! bounded channels block senders when full, `recv` reports disconnection
//! once all senders drop, and multiple consumers can share one receiver.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel currently at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel; senders block when `cap` items queue up.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails immediately instead of waiting when a
        /// bounded channel is full.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (lock, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = lock;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_blocks_then_unblocks() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_all_messages_delivered_once() {
            let (tx, rx) = unbounded();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}
