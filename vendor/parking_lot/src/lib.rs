//! Vendored, dependency-free shim of the subset of
//! [`parking_lot`](https://docs.rs/parking_lot) that bespoKV uses.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! poison-free API: `lock()`/`read()`/`write()` return guards directly. A
//! panicked holder does not poison the lock for everyone else — matching
//! `parking_lot` semantics that the codebase assumes.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with a poison-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with a poison-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable re-export (std's is already poison-free in use).
pub use std::sync::Condvar;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
