//! Vendored, dependency-free shim of the [`criterion`](https://docs.rs/criterion)
//! benchmark harness surface that bespoKV's `benches/` use: groups,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics engine or HTML reports — each benchmark warms up, picks
//! an iteration count sized to the measurement window, collects
//! `sample_size` samples, and prints min/median/mean ns per iteration.
//! Good enough to compare before/after on the same machine, which is all
//! the hot-path work needs.

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost across timed calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Many inputs pre-built per sample; routine calls timed as one block.
    SmallInput,
    /// Fewer inputs per sample (memory-heavy input values).
    LargeInput,
    /// One input per timed call; each call timed individually.
    PerIteration,
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A named benchmark group with its own sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its timing line.
    ///
    /// Generic over the name like the real criterion (which takes
    /// `impl Into<BenchmarkId>`): both `&str` and `format!(...)` Strings
    /// are accepted.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns_per_iter: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        b.report(&self.name, name.as_ref());
        self
    }

    /// Criterion requires an explicit finish; nothing to flush here.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timing loops.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f` repeatedly; the routine's return value is black-boxed so
    /// the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, also used to estimate per-call cost.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_calls == 0 {
            black_box(f());
            warm_calls += 1;
        }
        let per_call_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_calls as f64).max(1.0);

        let target_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((target_sample_ns / per_call_ns) as u64).clamp(1, 100_000_000);
        self.iters_per_sample = iters;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let batch = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        };

        // Warm-up: one batch.
        for _ in 0..batch {
            black_box(routine(setup()));
        }

        // Estimate per-call cost to size the sample count sanely.
        let est_start = Instant::now();
        black_box(routine(setup()));
        let per_call = est_start.elapsed();
        let budget = self.measurement_time;
        let max_samples = if per_call.is_zero() {
            self.sample_size
        } else {
            ((budget.as_nanos() / per_call.as_nanos().max(1)) as usize / batch)
                .clamp(2, self.sample_size)
        };
        self.iters_per_sample = batch as u64;

        for _ in 0..max_samples {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    fn report(&mut self, group: &str, name: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("bench: {group}/{name}: no samples collected");
            return;
        }
        self.samples_ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = self.samples_ns_per_iter.len();
        let min = self.samples_ns_per_iter[0];
        let median = self.samples_ns_per_iter[n / 2];
        let mean: f64 = self.samples_ns_per_iter.iter().sum::<f64>() / n as f64;
        println!(
            "bench: {group}/{name}: min {min:.1} ns, median {median:.1} ns, \
             mean {mean:.1} ns per iter ({n} samples x {} iters)",
            self.iters_per_sample
        );
    }
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| black_box(v.iter().map(|&x| x as u32).sum::<u32>()),
                BatchSize::PerIteration,
            );
        });
        g.finish();
    }
}
