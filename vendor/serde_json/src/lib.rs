//! Vendored, dependency-free shim of the `serde_json` API surface that
//! bespoKV uses: compact [`to_string`] and [`from_str`] over the vendored
//! `serde::Value` tree.
//!
//! The writer is compact (no spaces) to match upstream `serde_json`
//! output — tests assert exact strings like `"\"master_slave\""`.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON error — re-exported serde error with position info baked into the
/// message by the parser.
pub type Error = serde::Error;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep the decimal point, as upstream serde_json does.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over the raw bytes.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must be followed by \uDC00-\uDFFF.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v).unwrap();
        assert_eq!(out, r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn string_serializes_with_quotes() {
        assert_eq!(to_string("master_slave").unwrap(), "\"master_slave\"");
    }

    #[test]
    fn parse_paper_style_config() {
        let v = parse_value(
            r#"{ "zk": "10.1.1.1:2181", "num_replicas": "2", "nested": {"k": [1, 2.5, -3]} }"#,
        )
        .unwrap();
        assert_eq!(v.get("zk"), Some(&Value::Str("10.1.1.1:2181".into())));
        let nested = v.get("nested").unwrap();
        assert_eq!(
            nested.get("k"),
            Some(&Value::Arr(vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::Int(-3)
            ]))
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ ünïcödé \u{1F600}";
        let json = to_string(original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pair_parses() {
        let s: String = from_str(r#""😀""#).unwrap();
        assert_eq!(s, "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }
}
