//! Vendored, dependency-free shim of the slice of `serde` that bespoKV
//! uses, built around an intermediate [`Value`] tree instead of serde's
//! visitor machinery.
//!
//! Since offline builds cannot compile serde's proc-macro derive, types
//! opt in with declarative macros instead:
//!
//! - [`impl_serde_newtype!`] — tuple newtypes, transparent like derived
//!   newtype structs (`NodeId(7)` ⇄ `7`)
//! - [`impl_serde_unit_enum!`] — fieldless enums with explicit tag
//!   strings (the `rename_all = "snake_case"` spellings are written out)
//! - [`impl_serde_struct!`] — named-field structs; `#[default]` before a
//!   field mirrors `#[serde(default)]`
//! - [`impl_serde_enum!`] — externally tagged enums with struct variants
//!   (`{"consistent_hash":{"vnodes":3}}`)
//!
//! `serde_json` (also vendored) converts [`Value`] to/from JSON text.

use std::fmt;

/// A self-describing data tree — the interchange format between typed
/// values and concrete encodings like JSON.
///
/// Objects keep insertion order so encodings are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an `Obj` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "number",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a message, serde-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!(
                            "number {n} out of range for {}", stringify!($t)
                        ))),
                    other => Err(Error::unexpected("number", other)),
                }
            }
        }
    )*};
}
serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::unexpected("2-element array", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Impl-generator macros (the derive replacement)
// ---------------------------------------------------------------------------

/// Transparent serde for a tuple newtype: `NodeId(7)` ⇄ `7`.
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident, $inner:ty) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                <$inner as $crate::Deserialize>::from_value(v).map($ty)
            }
        }
    };
}

/// Serde for a fieldless enum with explicit tag strings:
/// `Topology::MasterSlave` ⇄ `"master_slave"`.
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident => $tag:literal),* $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $($ty::$variant => $crate::Value::Str($tag.to_owned()),)*
                }
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                match v {
                    $crate::Value::Str(s) => match s.as_str() {
                        $($tag => Ok($ty::$variant),)*
                        other => Err($crate::Error::custom(format!(
                            "unknown {} variant `{other}`", stringify!($ty)
                        ))),
                    },
                    other => Err($crate::Error::unexpected("string", other)),
                }
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __serde_field_or_default {
    (#[$_dmark:ident] $fty:ty, $name:expr, $slot:expr) => {
        match $slot {
            Some(v) => <$fty as $crate::Deserialize>::from_value(v)?,
            None => <$fty as Default>::default(),
        }
    };
    ($fty:ty, $name:expr, $slot:expr) => {
        match $slot {
            Some(v) => <$fty as $crate::Deserialize>::from_value(v)?,
            None => return Err($crate::Error::missing_field($name)),
        }
    };
}

/// Serde for a named-field struct. Prefix a field with `#[default]` to
/// mirror `#[serde(default)]`: absent keys fall back to
/// `Default::default()` instead of erroring.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($(#[$dmark:ident])? $field:ident : $fty:ty),* $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $( (stringify!($field).to_owned(),
                        $crate::Serialize::to_value(&self.$field)), )*
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                if !matches!(v, $crate::Value::Obj(_)) {
                    return Err($crate::Error::unexpected("object", v));
                }
                Ok($ty {
                    $($field: $crate::__serde_field_or_default!(
                        $(#[$dmark])? $fty,
                        stringify!($field),
                        v.get(stringify!($field))
                    ),)*
                })
            }
        }
    };
}

/// Serde for an externally tagged enum whose variants have named fields:
/// `Partitioning::ConsistentHash { vnodes: 3 }` ⇄
/// `{"consistent_hash":{"vnodes":3}}`.
#[macro_export]
macro_rules! impl_serde_enum {
    ($ty:ident { $($variant:ident => $tag:literal { $($field:ident : $fty:ty),* $(,)? }),* $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $($ty::$variant { $($field),* } => $crate::Value::Obj(vec![(
                        $tag.to_owned(),
                        $crate::Value::Obj(vec![
                            $( (stringify!($field).to_owned(),
                                $crate::Serialize::to_value($field)), )*
                        ]),
                    )]),)*
                }
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                let fields = match v {
                    $crate::Value::Obj(fields) if fields.len() == 1 => fields,
                    other => {
                        return Err($crate::Error::unexpected(
                            "single-key object", other,
                        ))
                    }
                };
                let (tag, body) = &fields[0];
                match tag.as_str() {
                    $($tag => Ok($ty::$variant {
                        $($field: match body.get(stringify!($field)) {
                            Some(v) => <$fty as $crate::Deserialize>::from_value(v)?,
                            None => {
                                return Err($crate::Error::missing_field(
                                    stringify!($field),
                                ))
                            }
                        },)*
                    }),)*
                    other => Err($crate::Error::custom(format!(
                        "unknown {} variant `{other}`", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Default)]
    struct Plain {
        a: u32,
        b: String,
    }
    impl_serde_struct!(Plain { a: u32, b: String });

    #[derive(Debug, PartialEq, Default)]
    struct WithDefault {
        req: u32,
        opt: String,
    }
    impl_serde_struct!(WithDefault {
        req: u32,
        #[default]
        opt: String,
    });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        DarkBlue,
    }
    impl_serde_unit_enum!(Color { Red => "red", DarkBlue => "dark_blue" });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Circle { radius: u32 },
        Rect { w: u32, h: u32 },
    }
    impl_serde_enum!(Shape {
        Circle => "circle" { radius: u32 },
        Rect => "rect" { w: u32, h: u32 },
    });

    #[derive(Debug, PartialEq)]
    struct Wrapped(u64);
    impl_serde_newtype!(Wrapped, u64);

    #[test]
    fn struct_roundtrip() {
        let p = Plain {
            a: 7,
            b: "hey".into(),
        };
        assert_eq!(Plain::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn default_marker_fills_missing_field() {
        let v = Value::Obj(vec![("req".into(), Value::Int(3))]);
        assert_eq!(
            WithDefault::from_value(&v).unwrap(),
            WithDefault {
                req: 3,
                opt: String::new()
            }
        );
        // But a missing *required* field still errors.
        let v = Value::Obj(vec![("opt".into(), Value::Str("x".into()))]);
        assert!(WithDefault::from_value(&v).is_err());
    }

    #[test]
    fn unit_enum_uses_tag_strings() {
        assert_eq!(Color::DarkBlue.to_value(), Value::Str("dark_blue".into()));
        assert_eq!(
            Color::from_value(&Value::Str("red".into())).unwrap(),
            Color::Red
        );
        assert!(Color::from_value(&Value::Str("green".into())).is_err());
    }

    #[test]
    fn tagged_enum_roundtrip() {
        for s in [Shape::Circle { radius: 9 }, Shape::Rect { w: 2, h: 4 }] {
            assert_eq!(Shape::from_value(&s.to_value()).unwrap(), s);
        }
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Wrapped(12).to_value(), Value::Int(12));
        assert_eq!(Wrapped::from_value(&Value::Int(12)).unwrap(), Wrapped(12));
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u8::from_value(&Value::Int(255)).unwrap(), 255);
    }
}
