//! Vendored, dependency-free shim of the subset of
//! [`rand`](https://docs.rs/rand) that bespoKV uses: the [`Rng`] trait
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — NOT the same
//! stream as upstream rand's ChaCha-based `StdRng`, but every use in this
//! workspace seeds explicitly with `seed_from_u64` and only relies on
//! determinism within a build, not on matching upstream streams.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Object-safe core (`next_u64`) plus generic
/// convenience methods usable through `R: Rng + ?Sized` receivers.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of type `T` from the "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics on empty ranges, like upstream rand.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers sampled by mapping 64 random bits onto a span with a widening
/// multiply (negligible bias for spans far below 2^64).
pub trait UniformInt: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u64;
        T::from_i128(lo + sample_span(rng, span) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range called with empty range");
        match (hi - lo).checked_add(1) {
            Some(span) if span as u128 <= u64::MAX as u128 => {
                T::from_i128(lo + sample_span(rng, span as u64) as i128)
            }
            // Span covers the full u64 domain: raw bits are already uniform.
            _ => T::from_i128(lo + rng.next_u64() as i128),
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..8usize);
            seen[v] = true;
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..8 hit");
    }

    #[test]
    fn works_through_unsized_receiver() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
