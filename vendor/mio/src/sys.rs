//! Linux epoll + eventfd backend, declared directly against the C ABI so
//! the shim needs no `libc` crate. Non-Linux targets get stubs that fail
//! with `ErrorKind::Unsupported` at `Poll::new` time.

#[cfg(target_os = "linux")]
pub(crate) use linux::*;

#[cfg(not(target_os = "linux"))]
pub(crate) use fallback::*;

#[cfg(target_os = "linux")]
mod linux {
    use crate::event::Event;
    use crate::Token;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLPRI: u32 = 0x002;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;
    pub(crate) const EPOLLET: u32 = 1 << 31;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EINTR: i32 = 4;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
    /// packs it there); naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(crate) struct RawEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// One epoll instance.
    pub(crate) struct Selector {
        epfd: OwnedFd,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            // SAFETY: epoll_create1 returned a fresh, owned descriptor.
            Ok(Selector {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
            let mut ev = RawEvent {
                events,
                data: token.0 as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) }).map(drop)
        }

        pub(crate) fn register(&self, fd: RawFd, token: Token, interests: crate::Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interests_to_epoll(interests), token)
        }

        pub(crate) fn reregister(&self, fd: RawFd, token: Token, interests: crate::Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interests_to_epoll(interests), token)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Token(0))
        }

        pub(crate) fn select(&self, buf: &mut EventBuf, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a nonzero sub-millisecond timeout still sleeps.
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32
                    + if t.subsec_nanos() % 1_000_000 != 0 && t.as_millis() < i32::MAX as u128 {
                        1
                    } else {
                        0
                    },
            };
            buf.raw.clear();
            let n = match cvt(unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.raw.spare_capacity_mut().as_mut_ptr().cast(),
                    buf.capacity as i32,
                    timeout_ms,
                )
            }) {
                Ok(n) => n as usize,
                // Interrupted before anything fired: report an empty poll,
                // callers loop anyway.
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            // SAFETY: the kernel initialized the first `n` events.
            unsafe { buf.raw.set_len(n) };
            Ok(())
        }
    }

    fn interests_to_epoll(interests: crate::Interest) -> u32 {
        let mut events = EPOLLET;
        if interests.is_readable() {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if interests.is_writable() {
            events |= EPOLLOUT;
        }
        events
    }

    /// Fixed-capacity buffer `epoll_wait` fills. `Event` is a transparent
    /// wrapper over `RawEvent`, so the raw vec doubles as the public slice.
    pub(crate) struct EventBuf {
        raw: Vec<Event>,
        capacity: usize,
    }

    impl EventBuf {
        pub(crate) fn with_capacity(capacity: usize) -> EventBuf {
            let capacity = capacity.max(1);
            EventBuf {
                raw: Vec::with_capacity(capacity),
                capacity,
            }
        }

        pub(crate) fn iter(&self) -> std::slice::Iter<'_, Event> {
            self.raw.iter()
        }

        pub(crate) fn is_empty(&self) -> bool {
            self.raw.is_empty()
        }

        pub(crate) fn clear(&mut self) {
            self.raw.clear()
        }
    }

    /// Eventfd-backed waker, registered edge-triggered: every `wake` bumps
    /// the counter, producing a fresh edge; the counter is never read back
    /// (wakes coalesce until observed, exactly the upstream contract).
    pub(crate) struct WakerFd {
        fd: OwnedFd,
    }

    impl WakerFd {
        pub(crate) fn new(selector: &Selector, token: Token) -> io::Result<WakerFd> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            // SAFETY: eventfd returned a fresh, owned descriptor.
            let fd = unsafe { OwnedFd::from_raw_fd(fd) };
            selector.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), EPOLLIN | EPOLLET, token)?;
            Ok(WakerFd { fd })
        }

        pub(crate) fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            let ret = unsafe { write(self.fd.as_raw_fd(), (&one as *const u64).cast(), 8) };
            // EAGAIN means the counter is saturated: a wake is already
            // pending, which is all the caller asked for.
            if ret == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
#[allow(dead_code)]
mod fallback {
    use crate::event::Event;
    use crate::Token;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLPRI: u32 = 0x002;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the Linux layout so [`Event`] compiles unchanged.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(crate) struct RawEvent {
        pub events: u32,
        pub data: u64,
    }

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "epoll shim requires Linux")
    }

    pub(crate) struct Selector;

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            Err(unsupported())
        }

        pub(crate) fn register(&self, _: RawFd, _: Token, _: crate::Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub(crate) fn reregister(&self, _: RawFd, _: Token, _: crate::Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub(crate) fn deregister(&self, _: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub(crate) fn select(&self, _: &mut EventBuf, _: Option<Duration>) -> io::Result<()> {
            Err(unsupported())
        }
    }

    pub(crate) struct EventBuf {
        empty: Vec<Event>,
    }

    impl EventBuf {
        pub(crate) fn with_capacity(_: usize) -> EventBuf {
            EventBuf { empty: Vec::new() }
        }

        pub(crate) fn iter(&self) -> std::slice::Iter<'_, Event> {
            self.empty.iter()
        }

        pub(crate) fn is_empty(&self) -> bool {
            true
        }

        pub(crate) fn clear(&mut self) {}
    }

    pub(crate) struct WakerFd;

    impl WakerFd {
        pub(crate) fn new(_: &Selector, _: Token) -> io::Result<WakerFd> {
            Err(unsupported())
        }

        pub(crate) fn wake(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }
}
