//! Readiness events and the registration contract for event sources.

use crate::sys;
use crate::{Interest, Registry, Token};
use std::io;

/// One readiness event delivered by [`crate::Poll::poll`].
#[repr(transparent)]
pub struct Event {
    raw: sys::RawEvent,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.raw.data as usize)
    }

    fn flags(&self) -> u32 {
        self.raw.events
    }

    /// Read readiness (includes peer hangup, which unblocks reads with 0).
    pub fn is_readable(&self) -> bool {
        self.flags() & (sys::EPOLLIN | sys::EPOLLPRI | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Write readiness (includes errors, which surface on the next write).
    pub fn is_writable(&self) -> bool {
        self.flags() & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer closed its write half (or the whole connection).
    pub fn is_read_closed(&self) -> bool {
        self.flags() & sys::EPOLLHUP != 0
            || (self.flags() & sys::EPOLLIN != 0 && self.flags() & sys::EPOLLRDHUP != 0)
    }

    /// The connection's write half is gone.
    pub fn is_write_closed(&self) -> bool {
        self.flags() & sys::EPOLLHUP != 0
    }

    /// An error condition is pending on the source.
    pub fn is_error(&self) -> bool {
        self.flags() & sys::EPOLLERR != 0
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("token", &self.token())
            .field("readable", &self.is_readable())
            .field("writable", &self.is_writable())
            .finish()
    }
}

/// An I/O handle that can be registered with a [`Registry`].
pub trait Source {
    /// Registers with edge-triggered semantics.
    fn register(&mut self, registry: &Registry, token: Token, interests: Interest)
        -> io::Result<()>;

    /// Updates token/interests; also re-arms the edge.
    fn reregister(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()>;

    /// Removes the source from the poll set.
    fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
}
