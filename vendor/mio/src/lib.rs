//! Vendored shim for [mio](https://docs.rs/mio/0.8): readiness-based I/O
//! event polling over Linux epoll.
//!
//! Exactly the API surface the workspace's reactor edge uses — `Poll` /
//! `Registry` / `Events` / `Token` / `Interest` / `Waker` and the
//! nonblocking `net::{TcpListener, TcpStream}` wrappers — with upstream
//! semantics: registration is **edge-triggered** (`EPOLLET`), so a source
//! must be read/written until `WouldBlock` before the next event for it
//! can fire. The epoll and eventfd calls are declared directly against
//! libc's C ABI (every Rust std program already links libc), keeping the
//! shim dependency-free.
//!
//! On non-Linux targets the crate compiles but `Poll::new` returns
//! `ErrorKind::Unsupported`; callers are expected to fall back to a
//! blocking transport (see `bespokv_runtime::tcp`).

pub mod event;
pub mod net;
mod sys;

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a registered event source in [`Events`] delivered by
/// [`Poll::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest to register a source with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

const INTEREST_READABLE: u8 = 0b01;
const INTEREST_WRITABLE: u8 = 0b10;

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(INTEREST_READABLE);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(INTEREST_WRITABLE);

    /// Combines two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read readiness is included.
    pub const fn is_readable(self) -> bool {
        self.0 & INTEREST_READABLE != 0
    }

    /// Whether write readiness is included.
    pub const fn is_writable(self) -> bool {
        self.0 & INTEREST_WRITABLE != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Polls registered sources for readiness events.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh poll instance (one epoll fd).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
            },
        })
    }

    /// The registry sources are (de)registered through. Clone-cheap via
    /// [`Registry::try_clone`] for cross-thread wakers.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one event is ready, `timeout` expires, or a
    /// [`Waker`] fires. `None` blocks indefinitely. Spurious wakeups with
    /// zero events are allowed (upstream allows them too).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry.selector.select(&mut events.inner, timeout)
    }
}

/// Registers event sources with a [`Poll`] instance.
pub struct Registry {
    selector: Arc<sys::Selector>,
}

impl Registry {
    /// Registers `source` for edge-triggered readiness notifications.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Changes the interests/token of an already-registered source.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Removes a source from the poll set.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    /// A second handle to the same poll set (for [`Waker`]s owned by other
    /// threads).
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(Registry {
            selector: Arc::clone(&self.selector),
        })
    }

    pub(crate) fn selector(&self) -> &sys::Selector {
        &self.selector
    }
}

/// A buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    inner: sys::EventBuf,
}

impl Events {
    /// A buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: sys::EventBuf::with_capacity(capacity),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = &event::Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discards all events (the next poll overwrites them anyway).
    pub fn clear(&mut self) {
        self.inner.clear()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a event::Event;
    type IntoIter = std::slice::Iter<'a, event::Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread: the
/// poll returns with an event carrying the waker's token. Backed by an
/// eventfd registered edge-triggered, exactly like upstream on Linux.
pub struct Waker {
    inner: sys::WakerFd,
}

impl Waker {
    /// Creates a waker firing `token` on the poll behind `registry`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            inner: sys::WakerFd::new(registry.selector(), token)?,
        })
    }

    /// Queues a wake-up. Cheap and thread-safe; coalesces with wakes not
    /// yet observed.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use net::{TcpListener, TcpStream};
    use std::io::{Read, Write};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKE: Token = Token(9);

    fn poll_until(
        poll: &mut Poll,
        events: &mut Events,
        want: Token,
    ) -> (bool, bool) {
        for _ in 0..50 {
            events.clear();
            poll.poll(events, Some(Duration::from_millis(100))).unwrap();
            for ev in events.iter() {
                if ev.token() == want {
                    return (ev.is_readable(), ev.is_writable());
                }
            }
        }
        panic!("no event for {want:?}");
    }

    #[test]
    fn accept_read_write_roundtrip() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(64);
        let std_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        std_listener.set_nonblocking(true).unwrap();
        let addr = std_listener.local_addr().unwrap();
        let mut listener = TcpListener::from_std(std_listener);
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .unwrap();

        let mut peer = std::net::TcpStream::connect(addr).unwrap();
        poll_until(&mut poll, &mut events, LISTENER);
        let (mut conn, _) = listener.accept().unwrap();
        // Drained: the next accept must not block, it must WouldBlock.
        match listener.accept() {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        poll.registry()
            .register(&mut conn, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        peer.write_all(b"ping").unwrap();
        let (readable, _) = poll_until(&mut poll, &mut events, CLIENT);
        assert!(readable);
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        // Edge-triggered: with nothing new arriving, reading again would
        // block rather than return 0.
        match conn.read(&mut buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        conn.write_all(b"pong").unwrap();
        let mut got = [0u8; 4];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");
    }

    #[test]
    fn edge_trigger_refires_on_new_data() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(64);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = std::net::TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        let mut conn = TcpStream::from_std(conn);
        poll.registry()
            .register(&mut conn, CLIENT, Interest::READABLE)
            .unwrap();

        peer.write_all(b"a").unwrap();
        poll_until(&mut poll, &mut events, CLIENT);
        let mut buf = [0u8; 16];
        let _ = conn.read(&mut buf).unwrap();
        // Fresh bytes after a drain must produce a fresh edge.
        peer.write_all(b"b").unwrap();
        let (readable, _) = poll_until(&mut poll, &mut events, CLIENT);
        assert!(readable);
    }

    #[test]
    fn reregister_changes_interest() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(64);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _peer = std::net::TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        let mut conn = TcpStream::from_std(conn);
        // A connected socket with room in its send buffer is writable.
        poll.registry()
            .register(&mut conn, CLIENT, Interest::WRITABLE)
            .unwrap();
        let (_, writable) = poll_until(&mut poll, &mut events, CLIENT);
        assert!(writable);
        poll.registry()
            .reregister(&mut conn, Token(5), Interest::WRITABLE)
            .unwrap();
        // Reregistering re-arms the edge under the new token.
        for _ in 0..50 {
            events.clear();
            poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
            if events.iter().any(|e| e.token() == Token(5)) {
                return;
            }
        }
        panic!("reregistered token never fired");
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let waker = Arc::new(Waker::new(poll.registry(), WAKE).unwrap());
        let w2 = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake().unwrap();
        });
        let start = std::time::Instant::now();
        let (readable, _) = poll_until(&mut poll, &mut events, WAKE);
        assert!(readable);
        assert!(start.elapsed() < Duration::from_secs(4), "wake never arrived");
        t.join().unwrap();
        // Wakes coalesce but repeat: a second wake fires a second event.
        waker.wake().unwrap();
        poll_until(&mut poll, &mut events, WAKE);
    }

    #[test]
    fn deregister_silences_a_source() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = std::net::TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        let mut conn = TcpStream::from_std(conn);
        poll.registry()
            .register(&mut conn, CLIENT, Interest::READABLE)
            .unwrap();
        poll.registry().deregister(&mut conn).unwrap();
        peer.write_all(b"x").unwrap();
        events.clear();
        poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
        assert!(
            !events.iter().any(|e| e.token() == CLIENT),
            "deregistered source still fired"
        );
    }
}
