//! Nonblocking TCP wrappers implementing [`crate::event::Source`].
//!
//! Thin newtypes over the std types: std already exposes everything the
//! reactor needs (nonblocking mode, vectored writes, `shutdown`); the
//! wrappers only add epoll registration and enforce that accepted streams
//! come out nonblocking.

use crate::event::Source;
use crate::{Interest, Registry, Token};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr};
use std::os::fd::{AsRawFd, RawFd};

/// A nonblocking listener registrable with a [`crate::Poll`].
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Wraps a std listener. The caller must have set it nonblocking
    /// (upstream has the same contract).
    pub fn from_std(listener: std::net::TcpListener) -> TcpListener {
        TcpListener { inner: listener }
    }

    /// Binds a fresh nonblocking listener.
    pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accepts one pending connection; `WouldBlock` when the backlog is
    /// empty. The returned stream is already nonblocking.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        stream.set_nonblocking(true)?;
        Ok((TcpStream { inner: stream }, addr))
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsRawFd for TcpListener {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

/// A nonblocking stream registrable with a [`crate::Poll`].
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Wraps a std stream. The caller must have set it nonblocking.
    pub fn from_std(stream: std::net::TcpStream) -> TcpStream {
        TcpStream { inner: stream }
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disables Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Shuts down one or both halves.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl AsRawFd for TcpStream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

impl Read for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Read for &TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.inner).read(buf)
    }
}

impl Write for TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        self.inner.write_vectored(bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Write for &TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&self.inner).write(buf)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        (&self.inner).write_vectored(bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&self.inner).flush()
    }
}

macro_rules! impl_source {
    ($ty:ident) => {
        impl Source for $ty {
            fn register(
                &mut self,
                registry: &Registry,
                token: Token,
                interests: Interest,
            ) -> io::Result<()> {
                registry.selector().register(self.as_raw_fd(), token, interests)
            }

            fn reregister(
                &mut self,
                registry: &Registry,
                token: Token,
                interests: Interest,
            ) -> io::Result<()> {
                registry.selector().reregister(self.as_raw_fd(), token, interests)
            }

            fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
                registry.selector().deregister(self.as_raw_fd())
            }
        }
    };
}

impl_source!(TcpListener);
impl_source!(TcpStream);
