//! Distributed cache for deep-learning training (paper section VI-B).
//!
//! DL ingestion hammers the storage tier with parallel reads of many small
//! objects (image tiles); parallel file systems choke on that, so the
//! paper builds a bespoKV-based distributed cache with kernel-bypass
//! transport. This example stands up that cache (AA+EC over tHT — every
//! node serves reads), preloads a training epoch's dataset, replays
//! multi-worker epoch reads, and compares socket vs DPDK-class transport.
//!
//! Run with: `cargo run --example dl_cache`

use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::runtime::TransportProfile;
use bespokv_suite::types::{ConsistencyLevel, Duration, Key, Mode, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One epoch's dataset: image tiles of ~8 KiB.
const IMAGES: u64 = 4_000;
const TILE_BYTES: usize = 8 << 10;

fn image_key(i: u64) -> Key {
    Key::from(format!("img/{i:08}"))
}

fn run_cache(transport: TransportProfile) -> (f64, f64) {
    // 4 cache nodes, 2-way replication, active-active: any node serves.
    let spec = ClusterSpec::new(2, 2, Mode::AA_EC).with_transport(transport);
    let mut cluster = SimCluster::build(spec);
    cluster.preload(
        (0..IMAGES).map(|i| (image_key(i), Value::from(vec![0xAB; TILE_BYTES]))),
    );
    // 8 data-loader workers, each streaming a shuffled epoch.
    for w in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(w);
        cluster.add_client(
            Box::new(move || {
                (
                    bespokv_suite::proto::Op::Get {
                        key: image_key(rng.gen_range(0..IMAGES)),
                    },
                    String::new(),
                    ConsistencyLevel::Default,
                )
            }),
            8,
            Duration::from_millis(100),
            Duration::from_millis(500),
        );
    }
    let window = Duration::from_millis(1500);
    cluster.run_for(Duration::from_millis(100) + window);
    let stats = cluster.collect_stats(window);
    (stats.qps(), stats.mean_latency_ms())
}

fn main() {
    println!("== distributed DL training cache (section VI-B) ==\n");
    println!(
        "dataset: {IMAGES} tiles x {} KiB; 8 loader workers, 4 cache nodes (AA+EC)\n",
        TILE_BYTES >> 10
    );
    let (sock_qps, sock_lat) = run_cache(TransportProfile::socket());
    println!(
        "kernel sockets : {:>9.0} images/s   mean latency {:.3} ms",
        sock_qps, sock_lat
    );
    let (dpdk_qps, dpdk_lat) = run_cache(TransportProfile::dpdk());
    println!(
        "kernel bypass  : {:>9.0} images/s   mean latency {:.3} ms",
        dpdk_qps, dpdk_lat
    );
    println!(
        "\nspeedup x{:.1} (the paper's cache trained 4x faster: 40 vs 10 images/s/GPU)",
        dpdk_qps / sock_qps
    );
}
