//! HPC monitoring with polyglot persistence (paper section VI-A, Fig 5).
//!
//! A Lustre-style monitoring pipeline feeds one distributed store whose
//! replicas live in *different* datalets: the master absorbs the
//! write-intensive collection stream into an LSM tree, one slave keeps an
//! ordered tree (Masstree-class) for the read-intensive analytics model,
//! and one slave keeps a persistent log for durability. MS+EC replication
//! fans each sample out asynchronously — every consumer reads the backend
//! shaped for it.
//!
//! Run with: `cargo run --example hpc_monitoring`

use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::datalet::{EngineKind, DEFAULT_TABLE};
use bespokv_suite::types::{ConsistencyLevel, Duration, Mode};
use bespokv_suite::workloads::hpc::HpcTrace;

fn main() {
    println!("== HPC monitoring with polyglot persistence ==\n");

    // One shard, three replicas, each in a different engine:
    // master = tLSM (collection), slave1 = tMT (analytics), slave2 = tLog.
    let spec = ClusterSpec::new(1, 3, Mode::MS_EC).with_engines(vec![
        EngineKind::TLsm,
        EngineKind::TMt,
        EngineKind::TLog,
    ]);
    let mut cluster = SimCluster::build(spec);

    // Warm the store with an hour of prior samples so the analytics model
    // has series to read from the first second.
    cluster.preload(HpcTrace::Analytics.workload(99).load_keys(80_000));

    // The Lustre monitoring collector (MDS/OSS/OST/MDT stats) writes
    // through the client library; an analytics model reads concurrently.
    let mut collector = HpcTrace::Monitoring.workload(7);
    cluster.add_client(
        Box::new(move || {
            (
                collector.next_op(),
                String::new(),
                ConsistencyLevel::Default,
            )
        }),
        8,
        Duration::from_millis(100),
        Duration::from_millis(500),
    );
    let mut analytics = HpcTrace::Analytics.workload(8);
    cluster.add_client(
        Box::new(move || {
            (
                analytics.next_op(),
                String::new(),
                ConsistencyLevel::Default,
            )
        }),
        8,
        Duration::from_millis(100),
        Duration::from_millis(500),
    );

    cluster.run_for(Duration::from_secs(3));
    let stats = cluster.collect_stats(Duration::from_millis(2900));
    println!(
        "served {:.0}k ops ({:.1} kQPS, mean latency {:.3} ms, {} errors)\n",
        stats.completed as f64 / 1e3,
        stats.kqps(),
        stats.mean_latency_ms(),
        stats.errors
    );

    // Every replica holds (a prefix of) the same stream, each in its own
    // representation:
    let info = cluster.map.shard(bespokv_suite::types::ShardId(0)).unwrap().clone();
    for &node in &info.replicas {
        let d = &cluster.datalets[node.raw() as usize];
        let role = if Some(node) == info.head() { "master" } else { "slave " };
        println!(
            "  {role} {node}: engine {:<6} holds {:>6} keys (range queries: {})",
            d.name(),
            d.len(),
            if d.capabilities().range_query { "yes" } else { "no" },
        );
    }

    // The analytics replica can serve ordered range scans over a series —
    // something the LSM master also supports but the log replica cannot.
    let tmt = &cluster.datalets[info.replicas[1].raw() as usize];
    let hits = tmt
        .scan(
            DEFAULT_TABLE,
            &bespokv_suite::types::Key::from("mon/mds/"),
            &bespokv_suite::types::Key::from("mon/mds/~"),
            5,
        )
        .expect("ordered engine");
    println!("\nfirst MDS samples on the analytics replica:");
    for (k, v) in hits {
        println!(
            "  {} = {} bytes @v{}",
            String::from_utf8_lossy(k.as_bytes()),
            v.value.len(),
            v.version
        );
    }
    println!("\ndone.");
}
