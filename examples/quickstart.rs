//! Quickstart: drop a datalet into bespoKV, get a distributed KV store.
//!
//! Builds a 2-shard, 3-replica MS+SC (chain-replicated, strongly
//! consistent) store over `tHT` datalets on the simulator, writes and reads
//! through the client API, inspects the replicas, and serves the same
//! engine over real TCP with the Redis protocol for good measure.
//!
//! Run with: `cargo run --example quickstart`

use bespokv_suite::cluster::script::{del, get, put, scan, ScriptClient};
use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::datalet::{t_redis, Datalet, DEFAULT_TABLE};
use bespokv_suite::proto::client::RespBody;
use bespokv_suite::runtime::{TcpClient, TcpServer};
use bespokv_suite::types::{ClientId, Duration, Key, Mode};
use std::sync::Arc;

fn main() {
    println!("== bespoKV quickstart ==\n");

    // 1. A distributed, strongly consistent store from a single-server
    //    hash-table datalet: 2 shards x 3 replicas, chain replication.
    let mut cluster = SimCluster::build(ClusterSpec::new(2, 3, Mode::MS_SC));
    println!(
        "built {} controlet-datalet pairs in mode {} (+coordinator, DLM, shared log)",
        cluster.controlets.len(),
        Mode::MS_SC
    );

    let client = cluster.add_script_client(vec![
        put("hello", "world"),
        put("answer", "42"),
        get("hello"),
        del("hello"),
        get("hello"),
        scan("a", "z", 10),
    ]);
    cluster.run_for(Duration::from_secs(5));

    let results = cluster
        .sim
        .actor_mut::<ScriptClient>(client)
        .results
        .clone();
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(RespBody::Done) => println!("  op{i}: ok"),
            Ok(RespBody::Value(v)) => println!(
                "  op{i}: value {:?} (version {})",
                String::from_utf8_lossy(v.value.as_bytes()),
                v.version
            ),
            Ok(RespBody::Entries(es)) => println!("  op{i}: {} entries", es.len()),
            Err(e) => println!("  op{i}: error: {e}"),
        }
    }

    // Chain replication really did copy the data everywhere:
    let key = Key::from("answer");
    let shard = cluster.map.shard_for_key(&key);
    let info = cluster.map.shard(shard).unwrap().clone();
    println!("\nkey {:?} lives on shard {shard} -> replicas {:?}", "answer", info.replicas);
    for node in &info.replicas {
        let v = cluster.datalets[node.raw() as usize]
            .get(DEFAULT_TABLE, &key)
            .expect("replicated");
        println!(
            "  {node}: {:?} @v{}",
            String::from_utf8_lossy(v.value.as_bytes()),
            v.version
        );
    }

    // 2. The same datalets speak real protocols over real sockets: serve a
    //    tRedis datalet over TCP and talk RESP to it.
    let datalet = Arc::new(t_redis(ClientId(1)));
    let handler_datalet = Arc::clone(&datalet);
    let version = std::sync::atomic::AtomicU64::new(1);
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::new(|| {
            Box::new(bespokv_suite::proto::BinaryParser::new())
                as Box<dyn bespokv_suite::proto::ProtocolParser>
        }),
        Arc::new(move |req| {
            use bespokv_suite::proto::client::{Op, Response};
            let v = version.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let result = match &req.op {
                Op::Put { key, value } => handler_datalet
                    .put(&req.table, key.clone(), value.clone(), v)
                    .map(|()| RespBody::Done),
                Op::Get { key } => handler_datalet.get(&req.table, key).map(RespBody::Value),
                _ => Err(bespokv_suite::types::KvError::Rejected("demo".into())),
            };
            Response {
                id: req.id,
                result,
            }
        }),
    )
    .expect("bind");
    println!("\nTCP server on {}", server.local_addr());

    let mut tcp = TcpClient::connect(
        server.local_addr(),
        Box::new(bespokv_suite::proto::BinaryParser::new()),
    )
    .expect("connect");
    use bespokv_suite::proto::client::{Op, Request};
    use bespokv_suite::types::{RequestId, Value};
    let put_req = Request::new(
        RequestId::compose(ClientId(9), 0),
        Op::Put {
            key: Key::from("tcp-key"),
            value: Value::from("over-the-wire"),
        },
    );
    tcp.call(&put_req).expect("put over tcp");
    let got = tcp
        .call(&Request::new(
            RequestId::compose(ClientId(9), 1),
            Op::Get {
                key: Key::from("tcp-key"),
            },
        ))
        .expect("get over tcp");
    println!("  RESP-backed datalet answered: {:?}", got.result);
    server.stop();
    println!("\ndone.");
}
