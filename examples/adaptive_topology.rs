//! On-the-fly topology/consistency adaptation (paper sections V, VI-E).
//!
//! Models the paper's resource-management scenario: a job-launch service
//! starts on a single cluster, where simple MS+EC is enough. As the
//! service spans more sites, write traffic from everywhere makes
//! active-active the better topology — so the store transitions to AA+EC
//! *live*, with no downtime and no data migration: new controlets attach
//! to the same datalets, drain the old ones, and take over.
//!
//! Run with: `cargo run --example adaptive_topology`

use bespokv_suite::cluster::{ClusterSpec, SimCluster};
use bespokv_suite::coordinator::CoordinatorActor;
use bespokv_suite::types::{ConsistencyLevel, Duration, Mode, ShardId};
use bespokv_suite::workloads::hpc::HpcTrace;

fn main() {
    println!("== live MS+EC -> AA+EC transition under a job-launch workload ==\n");

    let mut cluster = SimCluster::build(ClusterSpec::new(2, 3, Mode::MS_EC));
    // Preload the job-launch metadata keyspace so early reads hit.
    {
        let w = HpcTrace::JobLaunch.workload(0);
        cluster.preload(w.load_keys(10_000));
    }
    for c in 0..6 {
        let mut w = HpcTrace::JobLaunch.workload(c);
        cluster.add_client(
            Box::new(move || (w.next_op(), String::new(), ConsistencyLevel::Default)),
            8,
            Duration::ZERO,
            Duration::from_millis(500),
        );
    }

    // Phase 1: one-cluster deployment on MS+EC.
    cluster.run_for(Duration::from_secs(3));
    println!("t=3s   mode per shard: {}", modes(&mut cluster));

    // Phase 2: the service goes multi-site; switch to AA+EC live.
    let new0 = cluster.start_transition(ShardId(0), Mode::AA_EC);
    let new1 = cluster.start_transition(ShardId(1), Mode::AA_EC);
    println!(
        "t=3s   transition started: shard0 -> controlets {:?}, shard1 -> {:?}",
        new0, new1
    );
    cluster.run_for(Duration::from_secs(3));
    println!("t=6s   mode per shard: {}", modes(&mut cluster));

    // Phase 3: keep serving; measure.
    cluster.run_for(Duration::from_secs(2));
    let stats = cluster.collect_stats(Duration::from_secs(8));
    println!(
        "\nthroughput timeline (500 ms buckets, transition at 3 s):"
    );
    for (t, qps) in stats.timeline.series() {
        println!(
            "  {:>4.1}s {:>8.1} kQPS  {}",
            t,
            qps / 1e3,
            "#".repeat((qps / 1e3 / 10.0) as usize)
        );
    }
    println!(
        "\n{} ops completed, {} errors during the whole run — no downtime.",
        stats.completed, stats.errors
    );
}

fn modes(cluster: &mut SimCluster) -> String {
    let coordinator = cluster.coordinator;
    let map = cluster
        .sim
        .actor_mut::<CoordinatorActor>(coordinator)
        .core()
        .map()
        .clone();
    map.shards
        .iter()
        .map(|s| format!("{}={} {:?}", s.shard, s.mode, s.replicas))
        .collect::<Vec<_>>()
        .join(", ")
}
